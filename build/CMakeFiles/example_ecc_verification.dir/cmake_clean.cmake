file(REMOVE_RECURSE
  "CMakeFiles/example_ecc_verification.dir/examples/ecc_verification.cpp.o"
  "CMakeFiles/example_ecc_verification.dir/examples/ecc_verification.cpp.o.d"
  "example_ecc_verification"
  "example_ecc_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ecc_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
