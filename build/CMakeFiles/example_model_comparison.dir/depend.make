# Empty dependencies file for example_model_comparison.
# This may be replaced when dependencies are built.
