file(REMOVE_RECURSE
  "CMakeFiles/example_model_comparison.dir/examples/model_comparison.cpp.o"
  "CMakeFiles/example_model_comparison.dir/examples/model_comparison.cpp.o.d"
  "example_model_comparison"
  "example_model_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_model_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
