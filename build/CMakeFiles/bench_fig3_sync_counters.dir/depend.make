# Empty dependencies file for bench_fig3_sync_counters.
# This may be replaced when dependencies are built.
