file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_sync_counters.dir/bench/bench_fig3_sync_counters.cpp.o"
  "CMakeFiles/bench_fig3_sync_counters.dir/bench/bench_fig3_sync_counters.cpp.o.d"
  "bench_fig3_sync_counters"
  "bench_fig3_sync_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sync_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
