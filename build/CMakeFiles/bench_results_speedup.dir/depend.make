# Empty dependencies file for bench_results_speedup.
# This may be replaced when dependencies are built.
