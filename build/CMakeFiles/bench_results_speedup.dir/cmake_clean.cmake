file(REMOVE_RECURSE
  "CMakeFiles/bench_results_speedup.dir/bench/bench_results_speedup.cpp.o"
  "CMakeFiles/bench_results_speedup.dir/bench/bench_results_speedup.cpp.o.d"
  "bench_results_speedup"
  "bench_results_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_results_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
