file(REMOVE_RECURSE
  "CMakeFiles/bench_substrate.dir/bench/bench_substrate.cpp.o"
  "CMakeFiles/bench_substrate.dir/bench/bench_substrate.cpp.o.d"
  "bench_substrate"
  "bench_substrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
