# Empty dependencies file for bench_substrate.
# This may be replaced when dependencies are built.
