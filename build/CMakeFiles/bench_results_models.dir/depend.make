# Empty dependencies file for bench_results_models.
# This may be replaced when dependencies are built.
