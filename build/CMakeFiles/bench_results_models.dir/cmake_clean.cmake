file(REMOVE_RECURSE
  "CMakeFiles/bench_results_models.dir/bench/bench_results_models.cpp.o"
  "CMakeFiles/bench_results_models.dir/bench/bench_results_models.cpp.o.d"
  "bench_results_models"
  "bench_results_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_results_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
