# Empty dependencies file for bench_gate_ablation.
# This may be replaced when dependencies are built.
