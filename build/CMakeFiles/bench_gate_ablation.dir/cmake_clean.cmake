file(REMOVE_RECURSE
  "CMakeFiles/bench_gate_ablation.dir/bench/bench_gate_ablation.cpp.o"
  "CMakeFiles/bench_gate_ablation.dir/bench/bench_gate_ablation.cpp.o.d"
  "bench_gate_ablation"
  "bench_gate_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gate_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
