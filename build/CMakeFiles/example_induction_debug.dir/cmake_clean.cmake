file(REMOVE_RECURSE
  "CMakeFiles/example_induction_debug.dir/examples/induction_debug.cpp.o"
  "CMakeFiles/example_induction_debug.dir/examples/induction_debug.cpp.o.d"
  "example_induction_debug"
  "example_induction_debug.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_induction_debug.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
