# Empty dependencies file for example_induction_debug.
# This may be replaced when dependencies are built.
