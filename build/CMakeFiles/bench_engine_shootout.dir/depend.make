# Empty dependencies file for bench_engine_shootout.
# This may be replaced when dependencies are built.
