file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_shootout.dir/bench/bench_engine_shootout.cpp.o"
  "CMakeFiles/bench_engine_shootout.dir/bench/bench_engine_shootout.cpp.o.d"
  "bench_engine_shootout"
  "bench_engine_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
