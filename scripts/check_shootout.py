#!/usr/bin/env python3
"""Gate the engine-shootout JSON against verdict regressions.

Usage: check_shootout.py <shootout.json>

The shootout (bench_engine_shootout --json) records one object per
(design, engine) cell. This checker fails CI when any cell's verdict
regresses from the expectations pinned below — soundness bugs and lost
proofs show up here before anything else. Wall-clock numbers are reported
(including the single- vs multi-worker PDR comparison) but never gate the
build: CI machines are too noisy for timing assertions.
"""

import json
import sys

# verdict expected from every engine that can conclude on the design at the
# shootout's step budget (max_steps = 12). "unknown" rows are design/engine
# pairs that legitimately cannot conclude at this bound (BMC on a true
# property, k-induction without lemmas, PDR beyond its frame budget).
EXPECTED_VERDICTS = {
    # design: {engine-label-prefix: verdict}
    "sync_counters": {"bmc": "unknown", "k-induction": "unknown", "pdr": "unknown",
                      "portfolio": "unknown"},
    "sequencer": {"bmc": "unknown", "k-induction": "unknown", "pdr": "proven",
                  "portfolio": "proven"},
    "token_ring": {"bmc": "unknown", "k-induction": "unknown", "pdr": "proven",
                   "portfolio": "proven"},
    # updown_pair: k-induction alone is stuck, but inside the exchange-on
    # portfolio it can absorb PDR clauses and win — accept either outcome for
    # the portfolio rows; the pdr rows must prove.
    "updown_pair": {"bmc": "unknown", "k-induction": "unknown", "pdr": "proven"},
    "lfsr16": {"bmc": "unknown", "pdr": "unknown"},
    "gray_counter": {"bmc": "unknown", "k-induction": "unknown", "pdr": "unknown",
                     "portfolio": "unknown"},
    "fifo_ctrl": {"bmc": "unknown", "k-induction": "unknown", "pdr": "unknown"},
}


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        records = json.load(f)
    if not records:
        print("error: empty shootout JSON", file=sys.stderr)
        return 1

    failures = []
    for record in records:
        design, engine = record["design"], record["engine"]
        expectations = EXPECTED_VERDICTS.get(design, {})
        for prefix, verdict in expectations.items():
            if engine == prefix or engine.startswith(prefix + " "):
                if record["verdict"] != verdict:
                    failures.append(
                        f"{design} / {engine}: expected {verdict}, "
                        f"got {record['verdict']}")

    # Report (never gate) the sharded-PDR speedup per design.
    by_design = {}
    for record in records:
        if record["kind"] == "pdr":
            by_design.setdefault(record["design"], {})[record["workers"]] = \
                record["wall_ms"]
    wins = 0
    for design, cells in sorted(by_design.items()):
        if 1 not in cells:
            continue
        best_multi = min((ms for w, ms in cells.items() if w > 1), default=None)
        if best_multi is None:
            continue
        ratio = cells[1] / best_multi if best_multi > 0 else float("inf")
        marker = "faster" if ratio > 1.0 else "slower"
        if ratio > 1.0:
            wins += 1
        print(f"pdr sharding on {design}: w=1 {cells[1]:.1f} ms, "
              f"best multi {best_multi:.1f} ms ({ratio:.2f}x, {marker})")
    print(f"pdr sharding beats single-worker on {wins}/{len(by_design)} designs")

    if failures:
        print("\nverdict regressions:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"{len(records)} records, no verdict regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
