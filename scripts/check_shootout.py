#!/usr/bin/env python3
"""Gate the engine-shootout JSON against verdict regressions.

Usage: check_shootout.py <shootout.json> [<baseline.json>]

The shootout (bench_engine_shootout --json) records one object per
(design, engine) cell. This checker fails CI when any cell's verdict
regresses from the expectations pinned below — soundness bugs and lost
proofs show up here before anything else. Wall-clock numbers are reported
(including the single- vs multi-worker PDR comparison and the ternary-
lifting ablation) but never gate the build: CI machines are too noisy for
timing assertions.

With a second argument — a committed trajectory snapshot such as
BENCH_PR5.json (see docs/benchmarks.md) — every (design, engine) cell
present in both files must additionally agree on its verdict, so a fresh
run can never silently drift from the checked-in trajectory.
"""

import json
import sys

# verdict expected from every engine that can conclude on the design at the
# shootout's step budget (max_steps = 12). "unknown" rows are design/engine
# pairs that legitimately cannot conclude at this bound (BMC on a true
# property, k-induction without lemmas, PDR beyond its frame budget).
EXPECTED_VERDICTS = {
    # design: {engine-label-prefix: verdict}
    # The "pdr-cache" rows come from the proof-cache experiment (E9), which
    # runs PDR at whatever per-design budget closes the proof — so a design
    # can be "unknown" for the main-matrix "pdr" prefix (budget 12) and
    # "proven" for its cache rows at the same time. The prefix match is
    # label-word based ("pdr-cache warm" does not match "pdr " + suffix), so
    # the two expectations never collide.
    "sync_counters": {"bmc": "unknown", "k-induction": "unknown", "pdr": "unknown",
                      "portfolio": "unknown"},
    "sequencer": {"bmc": "unknown", "k-induction": "unknown", "pdr": "proven",
                  "portfolio": "proven", "pdr-cache": "proven"},
    "token_ring": {"bmc": "unknown", "k-induction": "unknown", "pdr": "proven",
                   "portfolio": "proven", "pdr-cache": "proven"},
    # updown_pair: k-induction alone is stuck, but inside the exchange-on
    # portfolio it can absorb PDR clauses and win — accept either outcome for
    # the portfolio rows; the pdr rows must prove.
    "updown_pair": {"bmc": "unknown", "k-induction": "unknown", "pdr": "proven",
                    "pdr-cache": "proven"},
    "lfsr16": {"bmc": "unknown", "pdr": "unknown", "pdr-cache": "proven"},
    "gray_counter": {"bmc": "unknown", "k-induction": "unknown", "pdr": "unknown",
                     "portfolio": "unknown", "pdr-cache": "proven"},
    "fifo_ctrl": {"bmc": "unknown", "k-induction": "unknown", "pdr": "unknown",
                  "pdr-cache": "proven"},
    # dual_accumulator (runs at a step budget of 6, see the bench): the
    # output-equality target is not k-inductive without the stage-1 lemma,
    # but PDR mines the equality clauses itself — with or without SAT
    # inprocessing (the "pdr -inproc" ablation row matches the "pdr" prefix
    # and must prove too, just at a multiple of the conflicts).
    "dual_accumulator": {"bmc": "unknown", "k-induction": "unknown",
                         "pdr": "proven", "portfolio": "proven",
                         "pdr-cache": "proven"},
    # --- tests/corpus rows (bench_engine_shootout --dir tests/corpus) ------
    # Files parsed through the AIGER/BTOR2 frontends; the *_rt rows are zoo
    # designs round-tripped through the AIGER writer, and must keep the same
    # verdict profile as their word-level originals.
    "counter_wrap": {"bmc": "unknown", "k-induction": "proven", "pdr": "proven",
                     "portfolio": "proven"},
    "rotate_onehot": {"bmc": "unknown", "k-induction": "proven", "pdr": "proven",
                      "portfolio": "proven"},
    # rol/ror and sdiv/srem/smod corpus designs (PR8): both carry 1-inductive
    # properties, so every proving engine concludes and BMC cannot.
    "rot_barrel": {"bmc": "unknown", "k-induction": "proven", "pdr": "proven",
                   "portfolio": "proven"},
    "sdiv_props": {"bmc": "unknown", "k-induction": "proven", "pdr": "proven",
                   "portfolio": "proven"},
    "toggle_bad": {"bmc": "falsified", "k-induction": "falsified",
                   "pdr": "falsified", "portfolio": "falsified"},
    "toggle_cex": {"bmc": "falsified", "k-induction": "falsified",
                   "pdr": "falsified", "portfolio": "falsified"},
    "lfsr16_rt": {"bmc": "unknown", "k-induction": "proven", "pdr": "unknown",
                  "portfolio": "proven"},
    "token_ring_rt": {"bmc": "unknown", "k-induction": "unknown", "pdr": "proven",
                      "portfolio": "proven"},
    "updown_pair_rt": {"bmc": "unknown", "k-induction": "unknown", "pdr": "proven"},
}


def main() -> int:
    if len(sys.argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1], encoding="utf-8") as f:
        records = json.load(f)
    if not records:
        print("error: empty shootout JSON", file=sys.stderr)
        return 1

    failures = []
    for record in records:
        design, engine = record["design"], record["engine"]
        expectations = EXPECTED_VERDICTS.get(design, {})
        for prefix, verdict in expectations.items():
            if engine == prefix or engine.startswith(prefix + " "):
                if record["verdict"] != verdict:
                    failures.append(
                        f"{design} / {engine}: expected {verdict}, "
                        f"got {record['verdict']}")

    # Verdict diff against a committed trajectory snapshot (BENCH_*.json).
    # Every baseline cell must be matched by the fresh run: a renamed engine
    # label or a dropped design must fail loudly (regenerate the snapshot
    # alongside such a change), not silently vacate the gate.
    if len(sys.argv) == 3:
        with open(sys.argv[2], encoding="utf-8") as f:
            baseline = {(r["design"], r["engine"]): r["verdict"] for r in json.load(f)}
        fresh_keys = {(r["design"], r["engine"]) for r in records}
        compared = 0
        for record in records:
            key = (record["design"], record["engine"])
            if key not in baseline:
                continue
            compared += 1
            if record["verdict"] != baseline[key]:
                failures.append(
                    f"{key[0]} / {key[1]}: baseline {sys.argv[2]} says "
                    f"{baseline[key]}, this run says {record['verdict']}")
        for key in sorted(baseline.keys() - fresh_keys):
            failures.append(
                f"{key[0]} / {key[1]}: in baseline {sys.argv[2]} but missing "
                f"from this run — regenerate the snapshot if intentional")
        if compared == 0:
            failures.append(
                f"baseline {sys.argv[2]} shares no cells with this run")
        print(f"baseline diff vs {sys.argv[2]}: {compared} cells compared")

    # Report (never gate) the sharded-PDR speedup per design (lifting-off,
    # inprocessing-on rows only, so the ablations don't contaminate each
    # other).
    by_design = {}
    for record in records:
        if (record["kind"] == "pdr" and not record.get("ternary", False)
                and record.get("inprocess", True)):
            by_design.setdefault(record["design"], {})[record["workers"]] = \
                record["wall_ms"]
    wins = 0
    for design, cells in sorted(by_design.items()):
        if 1 not in cells:
            continue
        best_multi = min((ms for w, ms in cells.items() if w > 1), default=None)
        if best_multi is None:
            continue
        ratio = cells[1] / best_multi if best_multi > 0 else float("inf")
        marker = "faster" if ratio > 1.0 else "slower"
        if ratio > 1.0:
            wins += 1
        print(f"pdr sharding on {design}: w=1 {cells[1]:.1f} ms, "
              f"best multi {best_multi:.1f} ms ({ratio:.2f}x, {marker})")
    print(f"pdr sharding beats single-worker on {wins}/{len(by_design)} designs")

    # Report (never gate) the ternary-lifting ablation at w=1.
    lift_cells = {}
    for record in records:
        if (record["kind"] == "pdr" and record["workers"] == 1
                and record.get("inprocess", True)):
            lift_cells.setdefault(record["design"], {})[record.get("ternary", False)] = \
                record
    lift_wins = 0
    for design, cells in sorted(lift_cells.items()):
        if True not in cells or False not in cells:
            continue
        off, on = cells[False], cells[True]
        better = (on["conflicts"] < off["conflicts"]
                  or on["wall_ms"] < off["wall_ms"])
        if better:
            lift_wins += 1
        print(f"pdr lifting on {design}: conflicts {off['conflicts']} -> "
              f"{on['conflicts']}, wall {off['wall_ms']:.1f} -> "
              f"{on['wall_ms']:.1f} ms, lifted_bits={on.get('lifted_bits', 0)}")
    if lift_cells:
        print(f"pdr ternary lifting improves conflicts or wall-clock on "
              f"{lift_wins}/{len(lift_cells)} designs")

    # The SAT-tier ablation: single-worker lifting-off PDR with inprocessing
    # on ("pdr") vs off ("pdr -inproc"). Conflict counts in this
    # configuration are deterministic, so unlike the wall-clock reports this
    # one *gates*: on the designs listed below the inprocessing tier must cut
    # conflicts by at least 25% or the build fails. (Wall time is still
    # reported, never gated.)
    INPROCESS_GATE = {"fifo_ctrl", "dual_accumulator"}
    inproc_cells = {}
    for record in records:
        if (record["kind"] == "pdr" and record["workers"] == 1
                and not record.get("ternary", False)):
            inproc_cells.setdefault(record["design"], {})[
                record.get("inprocess", True)] = record
    for design, cells in sorted(inproc_cells.items()):
        if True not in cells or False not in cells:
            continue
        on, off = cells[True], cells[False]
        cut = (1.0 - on["conflicts"] / off["conflicts"]) if off["conflicts"] else 0.0
        print(f"sat inprocessing on {design}: conflicts {off['conflicts']} -> "
              f"{on['conflicts']} ({cut:+.0%}), wall {off['wall_ms']:.1f} -> "
              f"{on['wall_ms']:.1f} ms, "
              f"subsumed={on.get('subsumed_clauses', 0)} "
              f"eliminated={on.get('eliminated_vars', 0)} "
              f"vivified={on.get('vivified_clauses', 0)}")
        if design in INPROCESS_GATE and cut < 0.25:
            failures.append(
                f"{design} / pdr -inproc ablation: inprocessing cut conflicts "
                f"by only {cut:.0%} (gate: >= 25%)")

    # The proof-cache gate (kind == "pdr-cache", from the E9 experiment and
    # docs/serve.md). Per design the experiment emits three rows: a cold PDR
    # run whose invariant is stored ("pdr-cache cold+store"), an exact-hit
    # recertification on a fresh elaboration ("pdr-cache warm"), and a
    # near-miss warm start on an edited copy ("pdr-cache warm-edit"). Unlike
    # the wall-clock reports this section *gates*:
    #   * every warm row must reproduce the cold verdict — a cache may cost
    #     work, never an answer;
    #   * the exact-hit path must be an Exact lookup and cut SAT conflicts by
    #     at least 5x on two or more designs (the cache's reason to exist);
    #   * every warm-edit row must be a Near lookup that actually seeded
    #     candidates (candidates_seeded > 0) — otherwise the incremental
    #     path silently degraded to a cold run.
    cache_cells = {}
    for record in records:
        if record.get("kind") != "pdr-cache":
            continue
        label = record["engine"].split(" ", 1)[1] if " " in record["engine"] else ""
        cache_cells.setdefault(record["design"], {})[label] = record
    warm_wins = 0
    for design, cells in sorted(cache_cells.items()):
        missing = {"cold+store", "warm", "warm-edit"} - cells.keys()
        if missing:
            failures.append(
                f"{design} / pdr-cache: missing rows {sorted(missing)}")
            continue
        cold, warm, edit = cells["cold+store"], cells["warm"], cells["warm-edit"]
        if cold.get("cache") != "stored":
            failures.append(
                f"{design} / pdr-cache cold+store: proof was not stored "
                f"(cache={cold.get('cache')})")
        for row, want in ((warm, "exact"), (edit, "near")):
            if row.get("cache") != want:
                failures.append(
                    f"{design} / {row['engine']}: expected a {want} lookup, "
                    f"got {row.get('cache')}")
            if row["verdict"] != cold["verdict"]:
                failures.append(
                    f"{design} / {row['engine']}: verdict {row['verdict']} "
                    f"!= cold verdict {cold['verdict']}")
        ratio = (cold["conflicts"] / warm["conflicts"]
                 if warm["conflicts"] else float("inf"))
        if ratio >= 5.0:
            warm_wins += 1
        print(f"proof cache on {design}: cold {cold['conflicts']} conflicts -> "
              f"recertify {warm['conflicts']} ({ratio:.1f}x), edited warm "
              f"{edit['conflicts']} with {edit.get('candidates_seeded', 0)} "
              f"seeded / {edit.get('candidates_graduated', 0)} graduated")
        if edit.get("candidates_seeded", 0) <= 0:
            failures.append(
                f"{design} / pdr-cache warm-edit: near miss seeded no "
                f"candidates — the warm start degraded to a cold run")
    if cache_cells:
        print(f"proof cache recertification cuts conflicts >=5x on "
              f"{warm_wins}/{len(cache_cells)} designs")
        if warm_wins < 2:
            failures.append(
                f"pdr-cache warm gate: recertification cut conflicts by >=5x "
                f"on only {warm_wins} design(s) (gate: >= 2)")

    if failures:
        print("\nverdict regressions:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"{len(records)} records, no verdict regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
