#!/usr/bin/env python3
"""Validate a genfv Chrome trace-format file and print a per-phase summary.

Usage: trace_summary.py <trace.json> [--require-category CAT]...
                        [--min-threads N] [--min-events N]

The file is what `genfv_cli --trace-out` (or `bench_engine_shootout
--trace-out`) writes: `{"traceEvents": [...]}` in Chrome trace format,
loadable in Perfetto / chrome://tracing. This checker fails CI when the
file is not well-formed trace JSON, when an expected layer (trace
category) recorded no spans, or when events were dropped because a
per-thread buffer overflowed — any of which means the telemetry story
regressed even though the engines still pass their tests.

On success it prints a per-category table (event count, total span time)
and a per-name table of the heaviest spans, which is the quick look one
wants from a CI artifact before opening the trace in a UI.
"""

import argparse
import collections
import json
import sys

VALID_PHASES = {"X", "i", "M"}


def fail(message: str) -> int:
    print(f"trace_summary: FAIL: {message}", file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-format JSON file")
    parser.add_argument(
        "--require-category",
        action="append",
        default=[],
        metavar="CAT",
        help="fail unless at least one event carries this category "
        "(repeatable; e.g. --require-category pdr --require-category sat)",
    )
    parser.add_argument(
        "--min-threads",
        type=int,
        default=1,
        help="fail unless events came from at least N distinct threads",
    )
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail unless the trace holds at least N span/instant events",
    )
    args = parser.parse_args()

    try:
        with open(args.trace, encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        return fail(f"cannot load {args.trace}: {err}")

    if not isinstance(data, dict) or not isinstance(data.get("traceEvents"), list):
        return fail('top level must be an object with a "traceEvents" list')

    by_category = collections.Counter()
    dur_by_category = collections.defaultdict(float)
    dur_by_name = collections.defaultdict(float)
    count_by_name = collections.Counter()
    threads = set()
    thread_names = {}
    events = 0

    for i, event in enumerate(data["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            return fail(f"{where} is not an object")
        ph = event.get("ph")
        if ph not in VALID_PHASES:
            return fail(f"{where}: unexpected phase {ph!r}")
        if not isinstance(event.get("name"), str) or not event["name"]:
            return fail(f"{where}: missing event name")
        if not isinstance(event.get("pid"), int) or not isinstance(event.get("tid"), int):
            return fail(f"{where}: pid/tid must be integers")
        if ph == "M":
            if event["name"] == "thread_name":
                thread_names[event["tid"]] = event.get("args", {}).get("name", "?")
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            return fail(f"{where}: bad timestamp {ts!r}")
        category = event.get("cat")
        if not isinstance(category, str) or not category:
            return fail(f"{where}: missing category")
        dur = 0.0
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                return fail(f"{where}: complete event without a valid dur")
        events += 1
        threads.add(event["tid"])
        by_category[category] += 1
        dur_by_category[category] += dur
        key = f"{category}/{event['name']}"
        count_by_name[key] += 1
        dur_by_name[key] += dur

    dropped = data.get("otherData", {}).get("droppedEvents", 0)
    if not isinstance(dropped, int) or dropped < 0:
        return fail(f"otherData.droppedEvents must be a non-negative integer, got {dropped!r}")

    print(f"{args.trace}: {events} events, {len(threads)} threads, {dropped} dropped")
    if thread_names:
        by_name = collections.Counter(thread_names.values())
        named = ", ".join(f"{name} x{n}" if n > 1 else name for name, n in sorted(by_name.items()))
        print(f"  named threads: {named}")
    print(f"  {'category':<12} {'events':>8} {'span ms':>10}")
    for category in sorted(by_category):
        print(
            f"  {category:<12} {by_category[category]:>8} "
            f"{dur_by_category[category] / 1000.0:>10.3f}"
        )
    print(f"  {'heaviest spans':<32} {'count':>8} {'span ms':>10}")
    heaviest = sorted(dur_by_name.items(), key=lambda kv: -kv[1])[:10]
    for key, dur in heaviest:
        print(f"  {key:<32} {count_by_name[key]:>8} {dur / 1000.0:>10.3f}")

    if events < args.min_events:
        return fail(f"only {events} events; expected at least {args.min_events}")
    if len(threads) < args.min_threads:
        return fail(f"events from only {len(threads)} threads; expected >= {args.min_threads}")
    if dropped > 0:
        return fail(f"{dropped} events were dropped (per-thread buffer overflow)")
    missing = [c for c in args.require_category if by_category[c] == 0]
    if missing:
        return fail(f"required categories recorded no events: {', '.join(missing)}")
    print("trace_summary: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
