#!/usr/bin/env python3
"""Repo-specific lint for genfv: invariants the compiler cannot check.

Rules (see docs/static-analysis.md for the rationale behind each):

  thread-capture   No NodeManager access inside a lambda handed to a thread.
                   `NodeManager` is not thread-safe and is never shared; work
                   crossing a thread boundary must be serialized into
                   manager-neutral form first (mc/exchange.hpp) or run against
                   a per-thread `ir::SystemClone`. The lint scans every lambda
                   that appears in a `std::thread(...)` / `std::jthread(...)`
                   / `workers.emplace_back(...)` argument list and rejects
                   bodies that mention `NodeManager`, `nm_ptr(`,
                   `node_manager(`, `.to_clone(` or `.to_original(` (clone
                   translation is single-threaded-phase work by contract).

  bare-mutex       No `std::mutex` / `std::condition_variable` /
                   `std::lock_guard` / `std::unique_lock` / `std::scoped_lock`
                   outside util/thread_safety.hpp and util/lock_order.{hpp,cpp}.
                   Every lock goes through the annotated `util::Mutex` /
                   `util::MutexLock` / `util::CondVar`, so clang thread-safety
                   analysis and the Debug lockdep layer see every acquisition.

  frontend-throw   Every `throw` in src/frontend/ is either a located
                   `ParseError(location, message)` (two arguments — reader
                   diagnostics always point at the offending input) or a
                   `UsageError` (writer-side API misuse: there is no input
                   position to point at).

  no-endl          No `std::endl` anywhere in src/, tools/ or bench/.
                   Engine code logs through util/log.hpp and writes files
                   through buffered streams; `std::endl` is a hidden flush
                   that has no place on any path a solver loop might reach.

Exit status: 0 when clean, 1 when any violation is found (one line each,
`file:line: [rule] message`). `--self-test` seeds one violation per rule in a
temp tree and verifies the linter catches all of them (and accepts a clean
file), so CI proves the teeth work before trusting a green run.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent

BARE_MUTEX_ALLOWED = {
    "src/util/thread_safety.hpp",
    "src/util/lock_order.hpp",
    "src/util/lock_order.cpp",
}

BARE_MUTEX_TOKENS = [
    "std::mutex",
    "std::recursive_mutex",
    "std::shared_mutex",
    "std::timed_mutex",
    "std::condition_variable",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
]

THREAD_SPAWN_RE = re.compile(r"std::j?thread\b|workers\s*\.\s*emplace_back\s*\(")

THREAD_BODY_FORBIDDEN = [
    "NodeManager",
    "nm_ptr(",
    "node_manager(",
    ".to_clone(",
    ".to_original(",
]

FRONTEND_THROW_RE = re.compile(r"\bthrow\b\s*(\w[\w:]*)")


def strip_comments(text: str) -> str:
    """Blank out // and /* */ comments and string literals, preserving line
    structure so reported line numbers stay exact."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line | block | str | chr
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "str"
                out.append('"')
                i += 1
                continue
            if c == "'":
                state = "chr"
                out.append("'")
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        elif state in ("str", "chr"):
            quote = '"' if state == "str" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(quote)
            elif c == "\n":  # unterminated; recover
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


def extract_lambda_bodies(code: str, start: int) -> list[tuple[int, str]]:
    """All `[...](...){...}` lambda bodies inside the call whose argument list
    opens at `start` (the offset of its '('). Returns (body_offset, body)."""
    # Find the extent of the call's parenthesized argument list.
    depth = 0
    end = start
    for i in range(start, len(code)):
        if code[i] == "(":
            depth += 1
        elif code[i] == ")":
            depth -= 1
            if depth == 0:
                end = i
                break
    else:
        end = len(code)
    args = code[start:end]
    bodies = []
    for m in re.finditer(r"\[[^\[\]]*\]", args):
        # Skip ahead over an optional parameter list to the body brace.
        j = m.end()
        while j < len(args) and args[j] in " \t\n":
            j += 1
        if j < len(args) and args[j] == "(":
            pdepth = 0
            while j < len(args):
                if args[j] == "(":
                    pdepth += 1
                elif args[j] == ")":
                    pdepth -= 1
                    if pdepth == 0:
                        j += 1
                        break
                j += 1
        while j < len(args) and args[j] in " \t\n":
            j += 1
        # Tolerate specifiers (mutable, noexcept, -> T) before the brace.
        k = args.find("{", j)
        if k < 0:
            continue
        bdepth = 0
        for e in range(k, len(args)):
            if args[e] == "{":
                bdepth += 1
            elif args[e] == "}":
                bdepth -= 1
                if bdepth == 0:
                    bodies.append((start + k, args[k : e + 1]))
                    break
    return bodies


def lint_file(path: pathlib.Path, rel: str, violations: list[str]) -> None:
    try:
        raw = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as e:
        violations.append(f"{rel}:0: [io] cannot read file: {e}")
        return
    code = strip_comments(raw)

    # no-endl
    for m in re.finditer(r"std::endl", code):
        violations.append(
            f"{rel}:{line_of(code, m.start())}: [no-endl] std::endl is a hidden "
            "flush; use '\\n' (and util/log.hpp for diagnostics)"
        )

    # bare-mutex
    if rel not in BARE_MUTEX_ALLOWED:
        for token in BARE_MUTEX_TOKENS:
            for m in re.finditer(re.escape(token) + r"\b", code):
                violations.append(
                    f"{rel}:{line_of(code, m.start())}: [bare-mutex] {token} outside "
                    "util/thread_safety.hpp; use util::Mutex / util::MutexLock / "
                    "util::CondVar so thread-safety analysis and lockdep see the lock"
                )

    # thread-capture
    for m in THREAD_SPAWN_RE.finditer(code):
        # The spawn's argument list is the next '(' in this statement (covers
        # both `std::thread t(...)` and direct `std::thread(...)` temporaries).
        paren = code.find("(", m.end() - 1)
        if paren < 0:
            continue
        between = code[m.end() : paren]
        if ";" in between or "{" in between or "}" in between:
            continue  # a declaration like std::vector<std::thread> workers;
        for body_off, body in extract_lambda_bodies(code, paren):
            for token in THREAD_BODY_FORBIDDEN:
                if token in body:
                    violations.append(
                        f"{rel}:{line_of(code, body_off)}: [thread-capture] lambda "
                        f"passed to a thread uses '{token}' — NodeManager never "
                        "crosses a thread; serialize to manager-neutral form or "
                        "translate before spawning"
                    )

    # frontend-throw
    if rel.startswith("src/frontend/"):
        for m in FRONTEND_THROW_RE.finditer(code):
            what = m.group(1)
            base = what.rsplit("::", 1)[-1]
            if base == "UsageError":
                continue  # writer-side misuse: no input position exists
            if base != "ParseError":
                violations.append(
                    f"{rel}:{line_of(code, m.start())}: [frontend-throw] throws "
                    f"'{what}' — frontend diagnostics must be a located ParseError "
                    "(or UsageError on the writer side)"
                )
                continue
            # Located = the two-argument (location, message) constructor:
            # require a top-level comma in the argument list.
            j = code.find("(", m.end(1))
            if j < 0:
                continue
            depth, has_comma = 0, False
            for e in range(j, len(code)):
                if code[e] in "([{":
                    depth += 1
                elif code[e] in ")]}":
                    depth -= 1
                    if depth == 0:
                        break
                elif code[e] == "," and depth == 1:
                    has_comma = True
            if not has_comma:
                violations.append(
                    f"{rel}:{line_of(code, m.start())}: [frontend-throw] ParseError "
                    "without a location argument — use ParseError(location, message)"
                )


def lint_tree(root: pathlib.Path) -> list[str]:
    violations: list[str] = []
    for sub in ("src", "tools", "bench"):
        base = root / sub
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in {".cpp", ".hpp", ".h", ".cc"}:
                continue
            rel = path.relative_to(root).as_posix()
            lint_file(path, rel, violations)
    return violations


def self_test() -> int:
    """Seed one violation per rule and verify each is caught."""
    seeded = {
        "no-endl": 'void f(std::ostream& os) { os << "x" << std::endl; }\n',
        "bare-mutex": "#include <mutex>\nstd::mutex mu;\n",
        "thread-capture": (
            "void spawn(genfv::ir::TransitionSystem& ts) {\n"
            "  std::thread t([&] { auto nm = ts.nm_ptr(); (void)nm; });\n"
            "  t.join();\n"
            "}\n"
        ),
        "frontend-throw": 'void g() { throw Error("boom"); }\n',
    }
    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        root = pathlib.Path(tmp)
        (root / "src" / "frontend").mkdir(parents=True)
        (root / "src" / "frontend" / "bad.cpp").write_text(
            seeded["frontend-throw"], encoding="utf-8"
        )
        (root / "src" / "bad.cpp").write_text(
            seeded["no-endl"] + seeded["bare-mutex"] + seeded["thread-capture"],
            encoding="utf-8",
        )
        # A clean file: comments and strings must not trip any rule, and a
        # located ParseError must be accepted.
        (root / "src" / "frontend" / "good.cpp").write_text(
            "// std::endl in a comment is fine; so is std::mutex\n"
            'const char* s = "std::endl";\n'
            'void h() { throw ParseError(loc(), "bad token"); }\n'
            'void h2() { throw UsageError("writer misuse"); }\n',
            encoding="utf-8",
        )
        found = lint_tree(root)
        for rule in seeded:
            if not any(f"[{rule}]" in v for v in found):
                print(f"self-test FAILED: seeded {rule} violation not detected")
                failures += 1
        for v in found:
            if "good.cpp" in v:
                print(f"self-test FAILED: clean file flagged: {v}")
                failures += 1
    if failures == 0:
        print("self-test OK: all seeded violations detected, clean file accepted")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", type=pathlib.Path, default=REPO,
                        help="repository root to lint (default: this repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify the linter catches seeded violations")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    violations = lint_tree(args.root)
    for v in violations:
        print(v)
    if violations:
        print(f"lint_genfv: {len(violations)} violation(s)")
        return 1
    print("lint_genfv: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
