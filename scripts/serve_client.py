#!/usr/bin/env python3
"""Reference client for genfv_serve over its AF_UNIX socket (docs/serve.md).

Usage:
  serve_client.py SOCKET [options] [REQUEST ...]

Each REQUEST argument is one protocol line: a JSON object with an "id" and
an "op". With no REQUEST arguments, request lines are read from stdin.
Requests are sent *serially* — the client waits for the response whose
"id" matches before sending the next one — so a warm `verify` really runs
after the cold run that populated the proof cache, and a `status` probe
really observes the jobs submitted before it. Every received response
line is echoed to stdout.

Options:
  --timeout SECS       per-response wait (default 120)
  --connect-wait SECS  keep retrying the connect for up to SECS (default 10),
                       so CI can background the daemon and call the client
                       immediately without racing the bind
  --require SPEC       post-condition on a response, checked after all
                       requests complete; may repeat. SPEC is
                         ID:KEY=VALUE   response KEY must equal VALUE
                                        (string compare; true/false for
                                        booleans, integral numbers as
                                        integers)
                         ID:KEY>NUM     numeric strictly-greater check
                         ID:KEY<NUM     numeric strictly-less check
                       Any failed requirement makes the client exit 1.

Example (the CI smoke):
  serve_client.py /tmp/genfv.sock \\
      '{"id":"s","op":"status"}' --require 's:workers>0'
"""

import argparse
import json
import socket
import sys
import time


def render(value):
    """Canonical string form of a JSON scalar for --require comparisons."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def parse_require(spec):
    """Split an ID:KEY=VALUE / ID:KEY>NUM / ID:KEY<NUM spec."""
    head, sep, tail = spec.partition(":")
    if not sep:
        raise ValueError(f"--require '{spec}': expected ID:KEY=VALUE")
    for op in ("=", ">", "<"):
        key, found, value = tail.partition(op)
        if found:
            return head, key, op, value
    raise ValueError(f"--require '{spec}': no '=', '>' or '<' in '{tail}'")


def check_require(responses, spec):
    """Returns an error string, or None when the requirement holds."""
    rid, key, op, want = parse_require(spec)
    response = responses.get(rid)
    if response is None:
        return f"require {spec}: no response with id '{rid}'"
    if key not in response:
        return f"require {spec}: response has no field '{key}': {response}"
    got = response[key]
    if op == "=":
        if render(got) != want:
            return f"require {spec}: got {render(got)}"
        return None
    try:
        number = float(got)
    except (TypeError, ValueError):
        return f"require {spec}: field '{key}' is not numeric: {got!r}"
    if op == ">" and not number > float(want):
        return f"require {spec}: got {render(got)}"
    if op == "<" and not number < float(want):
        return f"require {spec}: got {render(got)}"
    return None


def connect(path, connect_wait):
    deadline = time.monotonic() + connect_wait
    while True:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            sock.connect(path)
            return sock
        except OSError as error:
            sock.close()
            if time.monotonic() >= deadline:
                raise SystemExit(f"cannot connect to {path}: {error}")
            time.sleep(0.05)


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("socket_path")
    parser.add_argument("requests", nargs="*")
    parser.add_argument("--timeout", type=float, default=120.0)
    parser.add_argument("--connect-wait", type=float, default=10.0)
    parser.add_argument("--require", action="append", default=[])
    args = parser.parse_args()

    request_lines = args.requests or [line.rstrip("\n") for line in sys.stdin
                                      if line.strip()]
    # Every request must carry an id: the serial send-wait loop keys on it,
    # exactly like a real client multiplexing one daemon would.
    ids = []
    for line in request_lines:
        try:
            ids.append(json.loads(line)["id"])
        except (json.JSONDecodeError, TypeError, KeyError):
            raise SystemExit(f"request is not a JSON object with an id: {line}")

    sock = connect(args.socket_path, args.connect_wait)
    sock.settimeout(args.timeout)
    responses = {}
    with sock, sock.makefile("r", encoding="utf-8") as reader:
        for line, rid in zip(request_lines, ids):
            sock.sendall(line.encode("utf-8") + b"\n")
            while True:
                try:
                    received = reader.readline()
                except socket.timeout:
                    raise SystemExit(
                        f"timed out after {args.timeout}s waiting for id "
                        f"{rid!r}")
                if not received:
                    raise SystemExit(
                        f"server closed the connection before answering id "
                        f"{rid!r}")
                print(received, end="", flush=True)
                response = json.loads(received)
                responses[render(response.get("id"))] = response
                if response.get("id") == rid:
                    break

    failures = [error for spec in args.require
                for error in [check_require(responses, spec)] if error]
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
