#!/usr/bin/env python3
"""Convert an ASCII AIGER file (.aag) to the binary format (.aig).

Usage: aag_to_aig.py input.aag output.aig

The binary format requires the standard variable ordering (inputs first,
then latches, then gates, each numbered consecutively), which is exactly
what genfv's AIGER writer emits. Gate operands are sorted so that
rhs0 >= rhs1 before delta encoding, as the format demands.

This is how the binary-format files in tests/corpus/ were produced; it is
also a handy standalone tool when a consumer only accepts .aig.
"""

import sys


def encode_varint(value: int) -> bytes:
    out = bytearray()
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)
    return bytes(out)


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    src, dst = sys.argv[1], sys.argv[2]
    lines = open(src, "r", encoding="ascii").read().splitlines()
    header = lines[0].split()
    if header[0] != "aag":
        print(f"error: {src} is not an ASCII AIGER file", file=sys.stderr)
        return 1
    counts = [int(x) for x in header[1:]]
    while len(counts) < 7:
        counts.append(0)
    m, i, l, o, a, b, c = counts[:7]

    idx = 1
    inputs = [int(lines[idx + k].split()[0]) for k in range(i)]
    idx += i
    latches = [lines[idx + k].split() for k in range(l)]
    idx += l
    outputs = lines[idx : idx + o]
    idx += o
    bads = lines[idx : idx + b]
    idx += b
    constraints = lines[idx : idx + c]
    idx += c
    gates = [tuple(int(x) for x in lines[idx + k].split()) for k in range(a)]
    idx += a
    trailer = lines[idx:]  # symbol table + comments pass through verbatim

    if inputs != [2 * (k + 1) for k in range(i)]:
        print("error: inputs are not in standard order", file=sys.stderr)
        return 1
    if [int(row[0]) for row in latches] != [2 * (i + 1 + k) for k in range(l)]:
        print("error: latches are not in standard order", file=sys.stderr)
        return 1

    out = bytearray()
    out += (" ".join(["aig"] + header[1:]) + "\n").encode("ascii")
    for row in latches:  # binary latch lines drop the lhs literal
        out += (" ".join(row[1:]) + "\n").encode("ascii")
    for line in outputs + bads + constraints:
        out += (line + "\n").encode("ascii")
    for k, (lhs, rhs0, rhs1) in enumerate(gates):
        if lhs != 2 * (i + l + 1 + k):
            print("error: gates are not in standard order", file=sys.stderr)
            return 1
        hi, lo = max(rhs0, rhs1), min(rhs0, rhs1)
        if hi >= lhs:
            print(f"error: gate {lhs} references a later literal", file=sys.stderr)
            return 1
        out += encode_varint(lhs - hi) + encode_varint(hi - lo)
    for line in trailer:
        out += (line + "\n").encode("ascii")

    open(dst, "wb").write(bytes(out))
    return 0


if __name__ == "__main__":
    sys.exit(main())
