#!/usr/bin/env python3
"""Fail on broken relative links in Markdown files.

Usage: check_links.py <file-or-dir> [<file-or-dir> ...]

Checks every inline Markdown link ``[text](target)`` whose target is not an
absolute URL or an in-page anchor: the referenced file (or directory) must
exist relative to the Markdown file that links to it. Anchors on relative
links are stripped before the existence check (heading anchors are not
validated — file moves are the failure mode this guards against).
"""

import re
import sys
from pathlib import Path

# Inline links, skipping images. Good enough for this repo's docs; fenced
# code blocks are stripped before matching so example links don't trip it.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
FENCE_RE = re.compile(r"^(```|~~~).*?^\1\s*$", re.MULTILINE | re.DOTALL)


def markdown_files(args):
    for arg in args:
        path = Path(arg)
        if path.is_dir():
            yield from sorted(path.rglob("*.md"))
        else:
            yield path


def check_file(md: Path) -> list:
    errors = []
    text = FENCE_RE.sub("", md.read_text(encoding="utf-8"))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:", "#")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        resolved = (md.parent / relative).resolve()
        if not resolved.exists():
            errors.append(f"{md}: broken link '{target}' -> {resolved}")
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    count = 0
    for md in markdown_files(argv[1:]):
        if not md.exists():
            errors.append(f"{md}: no such file")
            continue
        count += 1
        errors.extend(check_file(md))
    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {count} markdown file(s), {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
