#!/usr/bin/env bash
# Clang thread-safety gate (CI; needs clang++ — gcc parses the annotations
# away, so running this under gcc would vacuously pass and is refused).
#
# Two halves, both mandatory:
#   1. Positive: every TU under src/ and tools/ compiles clean with
#      -Werror=thread-safety over the util/thread_safety.hpp annotations.
#   2. Negative: the GENFV_TSA_NEGATIVE_TEST probe in mc/pdr/frame_db.hpp —
#      an unguarded read of a GENFV_GUARDED_BY field — must FAIL to compile.
#      This proves the analysis has teeth; without it, a header regression
#      that silently disables the attributes would leave half 1 green forever.
set -u
cd "$(dirname "$0")/.."

CXX="${CXX:-clang++}"
if ! "$CXX" --version 2>/dev/null | grep -qi clang; then
  echo "error: $CXX is not clang; thread-safety analysis needs clang++" >&2
  exit 2
fi

FLAGS=(-std=c++20 -fsyntax-only -Isrc -Wall -Wextra -Werror=thread-safety)

status=0
while IFS= read -r tu; do
  if ! "$CXX" "${FLAGS[@]}" "$tu"; then
    echo "thread-safety: FAIL $tu" >&2
    status=1
  fi
done < <(find src tools -name '*.cpp' | sort)

if [ "$status" -ne 0 ]; then
  echo "thread-safety: annotation violations above" >&2
  exit 1
fi
echo "thread-safety: all TUs clean under -Werror=thread-safety"

# Negative probe: compiling the guarded-field read without the lock MUST fail.
if "$CXX" "${FLAGS[@]}" -DGENFV_TSA_NEGATIVE_TEST \
    src/mc/pdr/frame_db.cpp 2>/dev/null; then
  echo "thread-safety: NEGATIVE PROBE COMPILED — analysis is toothless" >&2
  echo "(tsa_probe_unguarded in mc/pdr/frame_db.hpp should be an error)" >&2
  exit 1
fi
echo "thread-safety: negative probe rejected as expected"
