#!/usr/bin/env python3
"""Forward RUP checker for the DRAT proofs the SAT core emits.

Usage: check_drat.py <base>            (reads <base>.cnf and <base>.drat)
       check_drat.py <file.cnf> <file.drat>

A proof run (`--drat-out <base>`, or `genfv_cli sat foo.cnf --drat-out
<base>`) produces two files: `<base>.cnf` holds every clause the caller
added, `<base>.drat` the derivation — one add line per derived clause and
`d` lines for retired learnt clauses (docs/sat.md). The solver only ever
emits reverse-unit-propagation (RUP) additions, so this checker verifies
each add the straightforward way: assume the negation of every literal in
the clause, unit-propagate over the active set, and demand a conflict.
The proof *verifies* when every addition is RUP; it *certifies UNSAT*
when, additionally, the empty clause is derived. Exit status:

  0  proof verified (prints whether UNSAT was certified)
  1  a proof line failed its RUP check, or --expect-unsat was given and
     the proof never derived the empty clause
  2  usage / malformed input

This is deliberately a from-scratch checker sharing no code with the
solver: a bug in the solver's propagation cannot vouch for itself here.
"""

import sys


def parse_dimacs(path):
    """Return (num_vars, clauses); clauses are tuples of non-zero ints."""
    num_vars = 0
    clauses = []
    current = []
    with open(path, "r", encoding="ascii") as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("c"):
                continue
            if line.startswith("p"):
                fields = line.split()
                if len(fields) != 4 or fields[1] != "cnf":
                    raise ValueError(f"{path}: malformed problem line: {line}")
                num_vars = int(fields[2])
                continue
            for token in line.split():
                lit = int(token)
                if lit == 0:
                    clauses.append(tuple(current))
                    current = []
                else:
                    current.append(lit)
    if current:
        raise ValueError(f"{path}: unterminated clause")
    return num_vars, clauses


def parse_drat(path):
    """Yield ('a'|'d', clause-tuple) per proof line, in order."""
    steps = []
    with open(path, "r", encoding="ascii") as handle:
        for lineno, line in enumerate(handle, 1):
            tokens = line.split()
            if not tokens or tokens[0] == "c":
                continue
            kind = "a"
            if tokens[0] == "d":
                kind = "d"
                tokens = tokens[1:]
            lits = [int(t) for t in tokens]
            if not lits or lits[-1] != 0:
                raise ValueError(f"{path}:{lineno}: proof line must end in 0")
            steps.append((kind, tuple(lits[:-1])))
    return steps


class Checker:
    """Active clause set with two-watched-literal unit propagation.

    Assignments split into a permanent root trail (units implied by the
    active set, kept across proof steps) and per-check temporary
    assumptions that are rolled back after each RUP test.
    """

    def __init__(self):
        self.assign = {}          # lit -> True for both polarities' status
        self.trail = []           # assigned lits, permanent prefix + temp
        self.root_size = 0        # trail prefix that is never rolled back
        self.watches = {}         # lit -> list of clause ids watching it
        self.clauses = {}         # id -> tuple of lits
        self.by_key = {}          # sorted-tuple -> list of ids (deletion)
        self.units = []           # pending permanent units
        self.next_id = 0
        self.contradiction = False  # empty clause present / root conflict

    def value(self, lit):
        if lit in self.assign:
            return True
        if -lit in self.assign:
            return False
        return None

    def add_clause(self, lits):
        lits = tuple(lits)
        if not lits:
            self.contradiction = True
            return
        cid = self.next_id
        self.next_id += 1
        self.by_key.setdefault(tuple(sorted(lits)), []).append(cid)
        if len(lits) == 1:
            self.clauses[cid] = lits
            self.units.append(lits[0])
            return
        # Clauses arrive at root level under an existing assignment, so the
        # watched pair must be chosen among currently-non-false literals;
        # a clause that is already unit (or falsified) propagates now, not
        # when a watch happens to trigger later.
        ordered = sorted(lits, key=lambda lit: self.value(lit) is False)
        self.clauses[cid] = tuple(ordered)
        for lit in ordered[:2]:
            self.watches.setdefault(lit, []).append(cid)
        if self.value(ordered[0]) is False:
            self.contradiction = True
        elif self.value(ordered[1]) is False and self.value(ordered[0]) is None:
            self.units.append(ordered[0])

    def delete_clause(self, lits):
        key = tuple(sorted(lits))
        ids = self.by_key.get(key)
        if not ids:
            # Deleting a clause that is not in the active set cannot make
            # the proof unsound (the set only grows stronger), but it means
            # the log and the checker disagree about state — reject loudly.
            raise ValueError(f"deletion of clause not in active set: {key}")
        cid = ids.pop()
        if not ids:
            del self.by_key[key]
        lits = self.clauses.pop(cid)
        if len(lits) == 1:
            # Deleted before its unit ever propagated; drop it if pending.
            if lits[0] in self.units:
                self.units.remove(lits[0])
            return
        for lit in lits[:2]:
            watchers = self.watches.get(lit, [])
            if cid in watchers:
                watchers.remove(cid)

    def enqueue(self, lit):
        """Assign lit true. Returns False on conflict with the trail."""
        val = self.value(lit)
        if val is not None:
            return val
        self.assign[lit] = True
        self.trail.append(lit)
        return True

    def propagate(self):
        """Exhaust unit propagation; True iff no conflict."""
        # Resume from the first unprocessed trail literal (callers enqueue
        # then call propagate; the trail holds each literal at most once).
        head = self._prop_head
        while head < len(self.trail):
            false_lit = -self.trail[head]
            head += 1
            watchers = self.watches.get(false_lit, [])
            i = 0
            while i < len(watchers):
                cid = watchers[i]
                lits = list(self.clauses[cid])
                # Keep the false literal in slot 1.
                if lits[0] == false_lit:
                    lits[0], lits[1] = lits[1], lits[0]
                if self.value(lits[0]) is True:
                    self.clauses[cid] = tuple(lits)
                    i += 1
                    continue
                # Find a replacement watch.
                moved = False
                for k in range(2, len(lits)):
                    if self.value(lits[k]) is not False:
                        lits[1], lits[k] = lits[k], lits[1]
                        self.clauses[cid] = tuple(lits)
                        watchers.pop(i)
                        self.watches.setdefault(lits[1], []).append(cid)
                        moved = True
                        break
                if moved:
                    continue
                self.clauses[cid] = tuple(lits)
                if self.value(lits[0]) is False:
                    self._prop_head = head
                    return False  # conflict
                if not self.enqueue(lits[0]):
                    self._prop_head = head
                    return False
                i += 1
        self._prop_head = head
        return True

    _prop_head = 0

    def settle_root(self):
        """Propagate pending permanent units at root level."""
        while self.units:
            lit = self.units.pop()
            if not self.enqueue(lit):
                self.contradiction = True
                return False
        self._prop_head = min(self._prop_head, self.root_size)
        if not self.propagate():
            self.contradiction = True
            return False
        self.root_size = len(self.trail)
        return True

    def is_rup(self, lits):
        """True iff asserting the negation of `lits` propagates a conflict."""
        if self.contradiction:
            return True  # anything follows from an inconsistent set
        saved = len(self.trail)
        saved_head = self._prop_head
        conflict = False
        for lit in lits:
            if not self.enqueue(-lit):
                conflict = True  # some literal already implied true at root
                break
        if not conflict:
            conflict = not self.propagate()
        # Roll back the temporary suffix.
        while len(self.trail) > saved:
            del self.assign[self.trail.pop()]
        self._prop_head = min(saved_head, saved)
        return conflict


def check(cnf_path, drat_path, expect_unsat):
    num_vars, clauses = parse_dimacs(cnf_path)
    steps = parse_drat(drat_path)

    checker = Checker()
    for clause in clauses:
        for lit in clause:
            if abs(lit) > num_vars:
                raise ValueError(f"{cnf_path}: literal {lit} out of range")
        checker.add_clause(clause)
    checker.settle_root()

    derived_empty = checker.contradiction
    for index, (kind, lits) in enumerate(steps, 1):
        if kind == "d":
            checker.delete_clause(lits)
            continue
        if not checker.is_rup(lits):
            print(f"FAIL {drat_path}: step {index} is not RUP: "
                  f"{' '.join(map(str, lits))} 0")
            return 1
        checker.add_clause(lits)
        if not checker.settle_root():
            derived_empty = True
            break
        if not lits:
            derived_empty = True
            break

    status = "UNSAT certified" if derived_empty else "no empty clause (not an UNSAT certificate)"
    print(f"OK {drat_path}: {len(steps)} step(s) verified against "
          f"{len(clauses)} input clause(s); {status}")
    if expect_unsat and not derived_empty:
        print(f"FAIL {drat_path}: --expect-unsat but the proof never derives "
              "the empty clause")
        return 1
    return 0


def main(argv):
    args = [a for a in argv[1:] if a != "--expect-unsat"]
    expect_unsat = "--expect-unsat" in argv[1:]
    if len(args) == 1:
        cnf_path, drat_path = args[0] + ".cnf", args[0] + ".drat"
    elif len(args) == 2:
        cnf_path, drat_path = args
    else:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        return check(cnf_path, drat_path, expect_unsat)
    except (OSError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
