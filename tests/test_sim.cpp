/// Simulator tests: operator semantics against hand-computed oracles, trace
/// consistency checking, constrained random simulation, waveform rendering
/// (the Fig. 3 artefact) and its parse-back companion.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "sim/random_sim.hpp"
#include "sim/waveform.hpp"
#include "util/rng.hpp"

namespace genfv::sim {
namespace {

using ir::NodeRef;

TEST(Evaluate, CoreOperators) {
  ir::NodeManager nm;
  const NodeRef a = nm.mk_input("a", 8);
  const NodeRef b = nm.mk_input("b", 8);
  Assignment env{{a, 0xF0}, {b, 0x0F}};
  EXPECT_EQ(evaluate(nm.mk_and(a, b), env), 0x00u);
  EXPECT_EQ(evaluate(nm.mk_or(a, b), env), 0xFFu);
  EXPECT_EQ(evaluate(nm.mk_add(a, b), env), 0xFFu);
  EXPECT_EQ(evaluate(nm.mk_sub(b, a), env), 0x1Fu);  // wraps mod 256
  EXPECT_EQ(evaluate(nm.mk_mul(a, b), env), (0xF0u * 0x0Fu) & 0xFFu);
  EXPECT_EQ(evaluate(nm.mk_neg(b), env), 0xF1u);
  EXPECT_EQ(evaluate(nm.mk_not(a), env), 0x0Fu);
  EXPECT_EQ(evaluate(nm.mk_ult(b, a), env), 1u);
  EXPECT_EQ(evaluate(nm.mk_slt(a, b), env), 1u);  // 0xF0 is negative signed
  EXPECT_EQ(evaluate(nm.mk_redand(a), env), 0u);
  EXPECT_EQ(evaluate(nm.mk_redor(a), env), 1u);
  EXPECT_EQ(evaluate(nm.mk_redxor(a), env), 0u);  // 4 ones
  EXPECT_EQ(evaluate(nm.mk_concat(a, b), env), 0xF00Fu);
  EXPECT_EQ(evaluate(nm.mk_extract(a, 7, 4), env), 0xFu);
  EXPECT_EQ(evaluate(nm.mk_zext(b, 16), env), 0x0Fu);
  EXPECT_EQ(evaluate(nm.mk_sext(a, 16), env), 0xFFF0u);
}

TEST(Evaluate, ShiftSemanticsIncludingOverflowAmounts) {
  ir::NodeManager nm;
  const NodeRef x = nm.mk_input("x", 8);
  const NodeRef s = nm.mk_input("s", 8);
  Assignment env{{x, 0x81}, {s, 1}};
  EXPECT_EQ(evaluate(nm.mk_shl(x, s), env), 0x02u);
  EXPECT_EQ(evaluate(nm.mk_lshr(x, s), env), 0x40u);
  EXPECT_EQ(evaluate(nm.mk_ashr(x, s), env), 0xC0u);  // sign fill
  env[s] = 9;  // amount >= width
  EXPECT_EQ(evaluate(nm.mk_shl(x, s), env), 0u);
  EXPECT_EQ(evaluate(nm.mk_lshr(x, s), env), 0u);
  EXPECT_EQ(evaluate(nm.mk_ashr(x, s), env), 0xFFu);
  env[x] = 0x41;  // positive
  EXPECT_EQ(evaluate(nm.mk_ashr(x, s), env), 0u);
}

TEST(Evaluate, DivisionConventions) {
  ir::NodeManager nm;
  const NodeRef a = nm.mk_input("a", 8);
  const NodeRef b = nm.mk_input("b", 8);
  Assignment env{{a, 17}, {b, 5}};
  EXPECT_EQ(evaluate(nm.mk_udiv(a, b), env), 3u);
  EXPECT_EQ(evaluate(nm.mk_urem(a, b), env), 2u);
  env[b] = 0;
  EXPECT_EQ(evaluate(nm.mk_udiv(a, b), env), 0xFFu);
  EXPECT_EQ(evaluate(nm.mk_urem(a, b), env), 17u);
}

TEST(Evaluate, UnboundLeafThrows) {
  ir::NodeManager nm;
  const NodeRef a = nm.mk_input("a", 8);
  EXPECT_THROW(evaluate(a, Assignment{}), UsageError);
}

TEST(Evaluate, ValuesMaskedToLeafWidth) {
  ir::NodeManager nm;
  const NodeRef a = nm.mk_input("a", 4);
  Assignment env{{a, 0xFF}};  // over-wide binding is masked
  EXPECT_EQ(evaluate(a, env), 0xFu);
}

/// A tiny mod-6 counter system used by several tests.
ir::TransitionSystem counter_system(unsigned width = 4, std::uint64_t wrap = 5) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef c = ts.add_state("c", width);
  ts.set_init(c, nm.mk_const(0, width));
  ts.set_next(c, nm.mk_ite(nm.mk_eq(c, nm.mk_const(wrap, width)), nm.mk_const(0, width),
                           nm.mk_add(c, nm.mk_const(1, width))));
  return ts;
}

TEST(Step, AdvancesStateFunctions) {
  auto ts = counter_system();
  const NodeRef c = ts.lookup("c");
  Assignment env{{c, 4}};
  EXPECT_EQ(step(ts, env).at(c), 5u);
  env[c] = 5;
  EXPECT_EQ(step(ts, env).at(c), 0u);
}

TEST(RandomSim, TraceIsConsistentAndStartsAtReset) {
  auto ts = counter_system();
  RandomSimulator simulator(ts, 99);
  const Trace trace = simulator.run(20);
  ASSERT_EQ(trace.size(), 21u);
  EXPECT_EQ(trace.value(ts.lookup("c"), 0), 0u);
  EXPECT_TRUE(trace.is_consistent());
}

TEST(RandomSim, FalsifyFindsViolations) {
  auto ts = counter_system();
  auto& nm = ts.nm();
  const NodeRef c = ts.lookup("c");
  RandomSimulator simulator(ts, 5);
  // c != 3 is violated on cycle 3.
  const auto witness = simulator.falsify(nm.mk_ne(c, nm.mk_const(3, 4)), 16, 2);
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ(witness->value(c, witness->size() - 1), 3u);
  // c <= 5 is a true invariant: no witness.
  EXPECT_FALSE(simulator.falsify(nm.mk_ule(c, nm.mk_const(5, 4)), 64, 4).has_value());
}

TEST(RandomSim, RespectsEnvironmentConstraints) {
  // A system with a reset input constrained inactive: random runs must keep
  // rst == 0 so the counter actually advances.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef rst = ts.add_input("rst", 1);
  const NodeRef c = ts.add_state("c", 8);
  ts.set_init(c, nm.mk_const(0, 8));
  ts.set_next(c, nm.mk_ite(rst, nm.mk_const(0, 8), nm.mk_add(c, nm.mk_const(1, 8))));
  ts.add_constraint(nm.mk_eq(rst, nm.mk_const(0, 1)));

  RandomSimulator simulator(ts, 3);
  const Trace trace = simulator.run(40);
  // Without constraint handling the counter would keep resetting; with it,
  // frame 40 must hold exactly 40.
  EXPECT_EQ(trace.value(c, 40), 40u);
}

TEST(RandomSim, SampleStatesCoversRuns) {
  auto ts = counter_system();
  RandomSimulator simulator(ts, 21);
  const auto samples = simulator.sample_states(10, 3);
  EXPECT_EQ(samples.size(), 33u);  // (10+1) frames x 3 restarts
}

TEST(Trace, FirstViolationIndex) {
  auto ts = counter_system();
  auto& nm = ts.nm();
  RandomSimulator simulator(ts, 1);
  const Trace trace = simulator.run(10);
  const auto frame = trace.first_violation(
      nm.mk_ne(ts.lookup("c"), nm.mk_const(2, 4)));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(*frame, 2u);
}

TEST(Waveform, RendersAllSignalsAndMarksFailure) {
  auto ts = counter_system();
  RandomSimulator simulator(ts, 1);
  const Trace trace = simulator.run(4);
  WaveformOptions options;
  options.failure_frame = 4;
  const std::string wave = render_waveform(trace, default_signals(ts), options);
  EXPECT_NE(wave.find("c"), std::string::npos);
  EXPECT_NE(wave.find("t4*"), std::string::npos);
  EXPECT_NE(wave.find("frame where the property fails"), std::string::npos);
  // 5 frames => 5 column separators beyond the label column in the header.
  EXPECT_NE(wave.find("t0"), std::string::npos);
}

TEST(Waveform, BitDiffCalloutNamesDifferingBits) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef a = ts.add_state("count1", 8);
  const NodeRef b = ts.add_state("count2", 8);
  ts.set_next(a, a);
  ts.set_next(b, b);
  Trace trace(&ts);
  trace.append({{a, 0xFF}, {b, 0x7F}});
  const std::string diff = render_bit_diff(trace, 0, "count1", a, "count2", b);
  EXPECT_NE(diff.find("bit 7"), std::string::npos);
  EXPECT_NE(diff.find("count1=1"), std::string::npos);
  EXPECT_NE(diff.find("count2=0"), std::string::npos);
  // Equal values produce no callout.
  trace.frame(0)[b] = 0xFF;
  EXPECT_TRUE(render_bit_diff(trace, 0, "count1", a, "count2", b).empty());
}

/// Property sweep: evaluate and fold must agree on random constant DAGs —
/// eval_op is shared, so this checks the folding plumbing (widths, params).
class FoldVsEval : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FoldVsEval, ConstantExpressionsFoldToEvaluatedValue) {
  util::Xoshiro256 rng(GetParam());
  ir::NodeManager nm;
  for (int i = 0; i < 200; ++i) {
    const unsigned w = 1 + static_cast<unsigned>(rng.below(16));
    const std::uint64_t va = rng.bits(w);
    const std::uint64_t vb = rng.bits(w);
    const NodeRef ca = nm.mk_const(va, w);
    const NodeRef cb = nm.mk_const(vb, w);
    // Folding happens at construction: the result must be a constant whose
    // value equals interpreting the same op over input leaves.
    const NodeRef ia = nm.mk_input("ia" + std::to_string(i), w);
    const NodeRef ib = nm.mk_input("ib" + std::to_string(i), w);
    Assignment env{{ia, va}, {ib, vb}};
    struct OpPair {
      NodeRef folded;
      NodeRef symbolic;
    };
    const OpPair pairs[] = {
        {nm.mk_add(ca, cb), nm.mk_add(ia, ib)},
        {nm.mk_sub(ca, cb), nm.mk_sub(ia, ib)},
        {nm.mk_mul(ca, cb), nm.mk_mul(ia, ib)},
        {nm.mk_and(ca, cb), nm.mk_and(ia, ib)},
        {nm.mk_xor(ca, cb), nm.mk_xor(ia, ib)},
        {nm.mk_ult(ca, cb), nm.mk_ult(ia, ib)},
        {nm.mk_sle(ca, cb), nm.mk_sle(ia, ib)},
        {nm.mk_lshr(ca, cb), nm.mk_lshr(ia, ib)},
        {nm.mk_udiv(ca, cb), nm.mk_udiv(ia, ib)},
    };
    for (const auto& [folded, symbolic] : pairs) {
      ASSERT_TRUE(folded->is_const());
      ASSERT_EQ(folded->value(), evaluate(symbolic, env));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoldVsEval, ::testing::Values(3, 17, 29));

}  // namespace
}  // namespace genfv::sim
