/// Telemetry subsystem tests: runtime-level gating, disabled-mode
/// zero-allocation, span nesting and thread attribution, instants, histogram
/// bucket boundaries, registry snapshots and reference stability, trace-JSON
/// well-formedness (checked with a standalone validator), the heartbeat
/// thread, and the thread-safety of the leveled logger.
///
/// NOTE: the first test asserts that no per-thread trace buffer exists yet,
/// so tests that enable tracing must come after it (gtest runs tests in
/// declaration order within one binary).

#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <regex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/log.hpp"
#include "util/telemetry.hpp"

namespace genfv::util {
namespace {

/// RAII guard: every test leaves telemetry exactly as it found it.
struct TelemetryGuard {
  TelemetryGuard() {
    set_telemetry_level(TelemetryLevel::Off);
    trace_reset();
  }
  ~TelemetryGuard() {
    set_telemetry_level(TelemetryLevel::Off);
    trace_reset();
  }
};

// --- disabled mode (must stay the first tests in this file) -----------------

TEST(TelemetryDisabled, SpansAllocateNoBuffersWhenOff) {
  ASSERT_EQ(telemetry_level(), TelemetryLevel::Off);
  const std::size_t before = trace_registered_threads();
  {
    GENFV_TRACE_SPAN("test", "outer");
    GENFV_TRACE_INSTANT("test", "tick");
    GENFV_TRACE_SPAN("test", "inner");
  }
  std::thread t([] {
    GENFV_TRACE_SPAN("test", "worker_span");
  });
  t.join();
  // No ring buffer was ever created: the off path is one branch, no state.
  EXPECT_EQ(trace_registered_threads(), before);
  EXPECT_EQ(before, 0u);
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST(TelemetryDisabled, TimersAndGatesReadNoClock) {
  TelemetryGuard guard;
  Counter& c = metrics().counter("test.disabled_timer_ns");
  c.reset();
  { ScopedTimerNs timer(c); }
  EXPECT_EQ(c.value(), 0u);
  EXPECT_FALSE(telemetry_on());
  EXPECT_FALSE(tracing_on());
}

// --- runtime level ----------------------------------------------------------

TEST(TelemetryLevelTest, MetricsLevelEnablesTimersButNotSpans) {
  TelemetryGuard guard;
  set_telemetry_level(TelemetryLevel::Metrics);
  EXPECT_TRUE(telemetry_on());
  EXPECT_FALSE(tracing_on());
  Counter& c = metrics().counter("test.metrics_timer_ns");
  c.reset();
  {
    ScopedTimerNs timer(c);
    GENFV_TRACE_SPAN("test", "not_recorded");
  }
  EXPECT_GT(c.value(), 0u);
  EXPECT_TRUE(trace_snapshot().empty());  // spans need Tracing
}

// --- spans ------------------------------------------------------------------

TEST(TraceSpans, NestingAndThreadAttribution) {
  TelemetryGuard guard;
  set_telemetry_level(TelemetryLevel::Tracing);
  const int main_tid = telemetry_thread_id();

  {
    GENFV_TRACE_SPAN("test", "outer");
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      GENFV_TRACE_SPAN("test", "inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  std::atomic<int> worker_tid{-1};
  std::thread t([&] {
    set_trace_thread_name("unit-worker");
    worker_tid = telemetry_thread_id();
    GENFV_TRACE_SPAN("test", "worker_span");
  });
  t.join();

  const auto events = trace_snapshot();
  ASSERT_EQ(events.size(), 3u);

  const TraceEventView* outer = nullptr;
  const TraceEventView* inner = nullptr;
  const TraceEventView* worker = nullptr;
  for (const auto& e : events) {
    if (std::string(e.name) == "outer") outer = &e;
    if (std::string(e.name) == "inner") inner = &e;
    if (std::string(e.name) == "worker_span") worker = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(worker, nullptr);

  // Nesting: inner lies strictly within outer (RAII scopes cannot overlap
  // otherwise), and both carry the recording thread's id.
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_LE(inner->start_ns + inner->dur_ns, outer->start_ns + outer->dur_ns);
  EXPECT_GT(outer->dur_ns, inner->dur_ns);
  EXPECT_EQ(outer->thread, main_tid);
  EXPECT_EQ(inner->thread, main_tid);
  EXPECT_EQ(worker->thread, worker_tid.load());
  EXPECT_NE(worker->thread, main_tid);
  EXPECT_EQ(std::string(outer->category), "test");

  // The worker's name reaches the JSON export as thread metadata.
  EXPECT_NE(trace_to_json().find("unit-worker"), std::string::npos);
}

TEST(TraceSpans, InstantsRecordZeroDuration) {
  TelemetryGuard guard;
  set_telemetry_level(TelemetryLevel::Tracing);
  GENFV_TRACE_INSTANT("test", "tick");
  const auto events = trace_snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].instant);
  EXPECT_EQ(events[0].dur_ns, 0u);
}

TEST(TraceSpans, ConcurrentRecordingIsLosslessPerThread) {
  TelemetryGuard guard;
  set_telemetry_level(TelemetryLevel::Tracing);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([] {
      for (int j = 0; j < kPerThread; ++j) GENFV_TRACE_SPAN("test", "burst");
    });
  }
  for (auto& t : threads) t.join();
  std::size_t burst = 0;
  for (const auto& e : trace_snapshot()) {
    if (std::string(e.name) == "burst") ++burst;
  }
  EXPECT_EQ(burst, static_cast<std::size_t>(kThreads) * kPerThread);
  EXPECT_EQ(trace_dropped_events(), 0u);
}

// --- trace JSON -------------------------------------------------------------

/// Minimal standalone JSON validator (objects, arrays, strings, numbers,
/// true/false/null) — enough for a genuine well-formedness round trip
/// without a JSON dependency.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}
  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::size_t len = std::string(word).size();
    if (s_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_])) != 0) ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(TraceJson, ExportIsWellFormedAndCarriesEvents) {
  TelemetryGuard guard;
  set_telemetry_level(TelemetryLevel::Tracing);
  set_trace_thread_name("json \"escaped\"\nname");  // exercises escaping
  {
    GENFV_TRACE_SPAN("pdr", "block_one");
  }
  GENFV_TRACE_INSTANT("exchange", "publish");
  const std::string json = trace_to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"block_one\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);  // thread metadata
  EXPECT_NE(json.find("droppedEvents"), std::string::npos);
}

TEST(TraceJson, EmptyTraceIsStillValid) {
  TelemetryGuard guard;
  const std::string json = trace_to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
}

// --- metrics ----------------------------------------------------------------

TEST(Metrics, CounterGaugeBasics) {
  Counter& c = metrics().counter("test.counter");
  c.reset();
  c.increment();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);

  Gauge& g = metrics().gauge("test.gauge");
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);

  // Lookup returns the same object; reset() zeroes but never invalidates.
  Counter& again = metrics().counter("test.counter");
  EXPECT_EQ(&c, &again);
  metrics().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramBucketBoundaries) {
  // first_bound=8, 4 buckets: (..8], (8..16], (16..32], overflow.
  Histogram h(8, 4);
  h.observe(1);
  h.observe(8);    // exactly on the first bound -> bucket 0
  h.observe(9);    // just past it -> bucket 1
  h.observe(16);   // on the second bound -> bucket 1
  h.observe(17);   // -> bucket 2
  h.observe(32);   // -> bucket 2
  h.observe(33);   // past the last bound -> overflow
  h.observe(1u << 30);

  EXPECT_EQ(h.count(), 8u);
  EXPECT_EQ(h.bucket_value(0), 2u);
  EXPECT_EQ(h.bucket_value(1), 2u);
  EXPECT_EQ(h.bucket_value(2), 2u);
  EXPECT_EQ(h.bucket_value(3), 2u);
  EXPECT_EQ(h.bucket_bound(0), 8u);
  EXPECT_EQ(h.bucket_bound(1), 16u);
  EXPECT_EQ(h.bucket_bound(2), 32u);
  EXPECT_EQ(h.bucket_bound(3), ~std::uint64_t{0});  // overflow is unbounded
  EXPECT_EQ(h.sum(), 1u + 8 + 9 + 16 + 17 + 32 + 33 + (1u << 30));
  EXPECT_EQ(h.max_seen(), 1u << 30);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_value(0), 0u);
}

TEST(Metrics, RegistryJsonIsWellFormed) {
  metrics().counter("test.json_counter").add(3);
  metrics().gauge("test.json_gauge").set(-5);
  metrics().histogram("test.json_hist", 2, 4).observe(3);
  const std::string json = metrics().to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"test.json_counter\":3"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_gauge\":-5"), std::string::npos);
  EXPECT_NE(json.find("\"test.json_hist\""), std::string::npos);
  metrics().reset();
}

TEST(Metrics, SnapshotValuesFlattenHistograms) {
  metrics().reset();
  metrics().counter("test.snap_counter").add(11);
  metrics().histogram("test.snap_hist", 2, 4).observe(5);
  const auto snap = metrics().snapshot_values();
  EXPECT_EQ(snap.at("test.snap_counter"), 11);
  EXPECT_EQ(snap.at("test.snap_hist.count"), 1);
  EXPECT_EQ(snap.at("test.snap_hist.sum"), 5);
  metrics().reset();
}

// --- heartbeat --------------------------------------------------------------

TEST(HeartbeatTest, FiresPeriodicallyAndStopsCleanly) {
  std::atomic<int> fired{0};
  {
    Heartbeat hb(0.005, [&] {
      ++fired;
      return std::string();  // empty -> nothing logged
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    hb.stop();
    const int at_stop = fired.load();
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(fired.load(), at_stop);  // no firing after stop
  }
  EXPECT_GE(fired.load(), 1);
}

TEST(HeartbeatTest, ProgressStatusReportsRegistryValues) {
  TelemetryGuard guard;
  metrics().reset();
  metrics().gauge("pdr.frontier").set(5);
  metrics().gauge("pdr.obligations_queued").set(3);
  metrics().counter("sat.conflicts").add(100);
  ProgressStatus status;
  const std::string line = status();
  EXPECT_NE(line.find("frame=5"), std::string::npos) << line;
  EXPECT_NE(line.find("queue=3"), std::string::npos) << line;
  EXPECT_NE(line.find("conflicts=100"), std::string::npos) << line;
  metrics().reset();
}

// --- logger thread-safety ---------------------------------------------------

TEST(LogThreadSafety, ConcurrentLinesNeverInterleave) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Info);
  constexpr int kThreads = 8;
  constexpr int kLines = 50;

  testing::internal::CaptureStderr();
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < kLines; ++i) {
        log_line(LogLevel::Info, "logtest",
                 "thread " + std::to_string(t) + " line " + std::to_string(i));
      }
    });
  }
  for (auto& t : threads) t.join();
  const std::string captured = testing::internal::GetCapturedStderr();
  set_log_level(saved);

  // Every emitted line is intact: timestamp + thread id + level + component
  // + message, one per line, exactly kThreads * kLines of them.
  const std::regex line_re(
      R"(\[ *\d+\.\d{3}\]\[T\d+\]\[INFO \]\[logtest\] thread \d+ line \d+)");
  std::istringstream in(captured);
  std::string line;
  int matched = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(std::regex_match(line, line_re)) << "mangled line: " << line;
    ++matched;
  }
  EXPECT_EQ(matched, kThreads * kLines);
}

TEST(LogFormat, PrefixCarriesTimestampAndThreadId) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::Warn);
  testing::internal::CaptureStderr();
  log_line(LogLevel::Warn, "fmt", "hello");
  const std::string captured = testing::internal::GetCapturedStderr();
  set_log_level(saved);
  const std::regex re(R"(\[ *\d+\.\d{3}\]\[T\d+\]\[WARN \]\[fmt\] hello\n)");
  EXPECT_TRUE(std::regex_match(captured, re)) << captured;
}

}  // namespace
}  // namespace genfv::util
