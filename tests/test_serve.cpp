/// Server-level tests for the resident verification daemon (docs/serve.md):
/// JSON protocol round-trips and the full malformed-request table, worker-pool
/// saturation / cancellation / deadlines / graceful drain, proof-cache
/// soundness (independent re-certification, corruption rejection, persistence
/// across processes), the cold-vs-warm zoo sweep, the end-to-end
/// incremental-reverification path, and a concurrent-client stress test that
/// rides the TSan `*MultiWorker*` CI filter.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "designs/design.hpp"
#include "flow/session.hpp"
#include "ir/struct_hash.hpp"
#include "mc/engine.hpp"
#include "mc/exchange.hpp"
#include "serve/json.hpp"
#include "serve/proof_cache.hpp"
#include "serve/server.hpp"
#include "serve/worker_pool.hpp"
#include "util/status.hpp"
#include "util/thread_safety.hpp"

namespace genfv::serve {
namespace {

using namespace std::chrono_literals;

// --- helpers -----------------------------------------------------------------

/// Thread-safe response collector usable as a Server sink from any thread.
class ResponseLog {
 public:
  Server::Sink sink() {
    return [this](const std::string& line) { push(line); };
  }

  void push(const std::string& line) {
    Json parsed = Json::parse(line);
    util::MutexLock lock(mu_);
    responses_.push_back(std::move(parsed));
    cv_.notify_all();
  }

  /// The response whose "id" dumps to `id` (e.g. "1" or "\"job\"").
  /// Fails the test and returns null on timeout.
  Json wait_for(const std::string& id, std::chrono::milliseconds timeout = 120s) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    util::MutexLock lock(mu_);
    for (;;) {
      for (const Json& response : responses_) {
        const Json* rid = response.get("id");
        if (rid != nullptr && rid->dump() == id) return response;
      }
      const auto now = std::chrono::steady_clock::now();
      if (now >= deadline) {
        ADD_FAILURE() << "timed out waiting for a response with id " << id;
        return Json();
      }
      cv_.wait_for(mu_, deadline - now);
    }
  }

  std::size_t size() const {
    util::MutexLock lock(mu_);
    return responses_.size();
  }

  Json last() const {
    util::MutexLock lock(mu_);
    return responses_.empty() ? Json() : responses_.back();
  }

 private:
  mutable util::Mutex mu_{"test.response_log"};
  util::CondVar cv_;
  std::vector<Json> responses_ GENFV_GUARDED_BY(mu_);
};

double number_field(const Json& response, const std::string& key) {
  const Json* field = response.get(key);
  EXPECT_NE(field, nullptr) << "missing '" << key << "' in " << response.dump();
  if (field == nullptr || !field->is_number()) return -1.0;
  return field->as_number();
}

std::string string_field(const Json& response, const std::string& key) {
  const Json* field = response.get(key);
  EXPECT_NE(field, nullptr) << "missing '" << key << "' in " << response.dump();
  if (field == nullptr || !field->is_string()) return "";
  return field->as_string();
}

bool bool_field(const Json& response, const std::string& key) {
  const Json* field = response.get(key);
  EXPECT_NE(field, nullptr) << "missing '" << key << "' in " << response.dump();
  if (field == nullptr || !field->is_bool()) return false;
  return field->as_bool();
}

/// mkdtemp-backed scratch directory, removed on destruction.
class ScopedTempDir {
 public:
  ScopedTempDir() {
    std::string pattern =
        (std::filesystem::temp_directory_path() / "genfv_serve_XXXXXX").string();
    if (::mkdtemp(pattern.data()) == nullptr) {
      ADD_FAILURE() << "mkdtemp failed";
    }
    path_ = pattern;
  }
  ~ScopedTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
};

// --- JSON layer --------------------------------------------------------------

TEST(ServeJson, RoundTripsValuesAndPreservesIntegerRendering) {
  const std::string text =
      R"({"a":1,"b":[true,null,"x\ny"],"c":-2.5,"d":"é","e":{}})";
  const Json parsed = Json::parse(text);
  EXPECT_EQ(parsed.dump(), "{\"a\":1,\"b\":[true,null,\"x\\ny\"],\"c\":-2.5,"
                           "\"d\":\"\xc3\xa9\",\"e\":{}}");
  EXPECT_EQ(Json::parse(parsed.dump()).dump(), parsed.dump());
  // Integral doubles render without a fraction; true fractions keep theirs.
  EXPECT_EQ(Json(42.0).dump(), "42");
  EXPECT_EQ(Json(std::uint64_t{0}).dump(), "0");
}

TEST(ServeJson, MalformedInputThrowsLocatedParseError) {
  const char* broken[] = {
      "",  "not json", "[1,", "{\"a\"}", "{\"a\":}", "\"unterminated",
      "01", "{\"a\":1,}", "[1] trailing", "\"bad \\q escape\"",
  };
  for (const char* text : broken) {
    try {
      Json::parse(text);
      ADD_FAILURE() << "parse accepted: " << text;
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("json:byte"), std::string::npos)
          << e.what();
    }
  }
}

// --- protocol ----------------------------------------------------------------

TEST(ServeProtocol, EveryMalformedRequestClassIsLocated) {
  ServerOptions options;
  options.workers = 1;
  ResponseLog log;  // outlives the server: ~Server drains jobs into the sink
  Server server(options);

  const struct {
    const char* line;
    const char* error;
  } table[] = {
      {"not json", "bad-json"},
      {"[1,2]", "not-an-object"},
      {R"({"op":"status"})", "missing-id"},
      {R"({"id":[1],"op":"status"})", "bad-id"},
      {R"({"id":1})", "missing-op"},
      {R"({"id":1,"op":7})", "missing-op"},
      {R"({"id":1,"op":"zap"})", "unknown-op"},
      {R"({"id":1,"op":"cancel"})", "bad-field"},
      {R"({"id":1,"op":"verify"})", "missing-source"},
      {R"({"id":1,"op":"verify","design":"sequencer","rtl":"module m; endmodule"})",
       "conflicting-source"},
      {R"({"id":1,"op":"verify","design":"no_such_design"})", "unknown-design"},
      {R"({"id":1,"op":"verify","design":17})", "bad-field"},
      {R"({"id":1,"op":"verify","design":"sequencer","engine":"magic"})",
       "unknown-engine"},
      {R"({"id":1,"op":"verify","design":"sequencer","max_k":-1})", "bad-field"},
      {R"({"id":1,"op":"verify","design":"sequencer","deadline_ms":0})", "bad-field"},
      {R"({"id":1,"op":"verify","design":"sequencer","cache":"yes"})", "bad-field"},
      {R"({"id":1,"op":"verify","rtl":"module m; endmodule","properties":7})",
       "bad-field"},
      {R"({"id":1,"op":"verify","file":"/nonexistent/design.aag"})", "bad-file"},
      {R"({"id":1,"op":"verify","rtl":"garbage ("})", "bad-rtl"},
      {R"({"id":1,"op":"verify","design":"sequencer","property":"no_such_prop"})",
       "unknown-property"},
  };

  for (const auto& row : table) {
    const std::size_t before = log.size();
    server.handle_line(row.line, log.sink());
    ASSERT_EQ(log.size(), before + 1) << "no synchronous answer for: " << row.line;
    const Json response = log.last();
    EXPECT_FALSE(bool_field(response, "ok")) << row.line;
    EXPECT_EQ(string_field(response, "error"), row.error) << row.line;
    EXPECT_FALSE(string_field(response, "message").empty()) << row.line;
  }

  // The RTL source with no properties elaborates but has nothing to prove.
  Json request;
  request.set("id", "empty");
  request.set("op", "verify");
  request.set("rtl",
              "module m (input clk, rst, output logic q);\n"
              "  always_ff @(posedge clk) begin\n"
              "    if (rst) q <= 1'b0; else q <= !q;\n"
              "  end\nendmodule\n");
  server.handle_line(request.dump(), log.sink());
  EXPECT_EQ(string_field(log.last(), "error"), "no-targets");

  // Blank lines are keep-alives, not errors.
  const std::size_t before = log.size();
  server.handle_line("   \t", log.sink());
  EXPECT_EQ(log.size(), before);
}

TEST(ServeProtocol, VerifyStatusShutdownRoundTrip) {
  ServerOptions options;
  options.workers = 1;
  ResponseLog log;  // outlives the server: ~Server drains jobs into the sink
  Server server(options);

  server.handle_line(R"({"id":"s0","op":"status"})", log.sink());
  const Json s0 = log.wait_for("\"s0\"");
  EXPECT_TRUE(bool_field(s0, "ok"));
  EXPECT_EQ(number_field(s0, "workers"), 1.0);
  EXPECT_EQ(number_field(s0, "completed"), 0.0);
  EXPECT_FALSE(bool_field(s0, "draining"));

  // Cold run: a miss that populates the cache.
  server.handle_line(
      R"({"id":1,"op":"verify","design":"sequencer","engine":"pdr","max_k":16})",
      log.sink());
  const Json cold = log.wait_for("1");
  EXPECT_TRUE(bool_field(cold, "ok"));
  EXPECT_EQ(string_field(cold, "verdict"), "proven");
  EXPECT_EQ(string_field(cold, "engine"), "pdr");
  EXPECT_EQ(string_field(cold, "cache"), "miss");
  const double cold_depth = number_field(cold, "depth");
  EXPECT_GT(cold_depth, 0.0);

  // Exact resubmission: served from the cache behind a re-certification.
  server.handle_line(
      R"({"id":2,"op":"verify","design":"sequencer","engine":"pdr","max_k":16})",
      log.sink());
  const Json warm = log.wait_for("2");
  EXPECT_EQ(string_field(warm, "verdict"), "proven");
  EXPECT_EQ(string_field(warm, "cache"), "hit");
  EXPECT_EQ(string_field(warm, "engine"), "cache+recertify");
  EXPECT_EQ(number_field(warm, "depth"), cold_depth);
  // The re-certification is one induction check, not a full proof.
  EXPECT_LT(number_field(warm, "sat_calls"), number_field(cold, "sat_calls"));

  // Opting out of the cache is per-request.
  server.handle_line(
      R"({"id":3,"op":"verify","design":"sequencer","cache":false,"max_k":16})",
      log.sink());
  EXPECT_EQ(string_field(log.wait_for("3"), "cache"), "off");

  // Cancelling a job nobody submitted is answered, not ignored.
  server.handle_line(R"({"id":4,"op":"cancel","job":42})", log.sink());
  const Json cancel = log.wait_for("4");
  EXPECT_TRUE(bool_field(cancel, "ok"));
  EXPECT_FALSE(bool_field(cancel, "cancelled"));

  server.handle_line(R"({"id":"s1","op":"status"})", log.sink());
  const Json s1 = log.wait_for("\"s1\"");
  // A job's response is sent before the worker retires it, so "completed"
  // may lag the last response by one; "answered" never lags a response we
  // already hold.
  EXPECT_GE(number_field(s1, "completed"), 2.0);
  EXPECT_EQ(number_field(s1, "answered"), 3.0);
  EXPECT_EQ(number_field(s1, "cache_hits"), 1.0);
  EXPECT_EQ(number_field(s1, "cache_misses"), 1.0);
  EXPECT_EQ(number_field(s1, "cache_size"), 1.0);

  server.handle_line(R"({"id":"bye","op":"shutdown"})", log.sink());
  const Json bye = log.wait_for("\"bye\"");
  EXPECT_TRUE(bool_field(bye, "draining"));

  // Draining servers refuse new verify jobs with a stable error class.
  server.handle_line(R"({"id":5,"op":"verify","design":"sequencer"})", log.sink());
  EXPECT_EQ(string_field(log.wait_for("5"), "error"), "server-draining");
}

TEST(ServeProtocol, RtlSourceWithNamedPropertyFilter) {
  ServerOptions options;
  options.workers = 1;
  ResponseLog log;  // outlives the server: ~Server drains jobs into the sink
  Server server(options);

  const designs::DesignInfo& info = designs::design_by_name("sequencer");
  Json request;
  request.set("id", "rtl1");
  request.set("op", "verify");
  request.set("rtl", info.rtl);
  JsonArray properties;
  for (const flow::TargetSpec& target : info.targets) {
    Json p;
    p.set("name", target.name);
    p.set("sva", target.sva);
    properties.push_back(p);
  }
  request.set("properties", Json(properties));
  request.set("property", info.targets.front().name);
  request.set("engine", "pdr");
  request.set("max_k", 16);
  server.handle_line(request.dump(), log.sink());

  const Json response = log.wait_for("\"rtl1\"");
  EXPECT_TRUE(bool_field(response, "ok"));
  EXPECT_EQ(string_field(response, "verdict"), "proven");
}

TEST(ServeProtocol, SameRtlDifferentPropertySetsDoNotShareSessions) {
  ServerOptions options;
  options.workers = 1;
  ResponseLog log;  // outlives the server: ~Server drains jobs into the sink
  Server server(options);

  const designs::DesignInfo& info = designs::design_by_name("sequencer");
  Json request;
  request.set("id", "withprops");
  request.set("op", "verify");
  request.set("rtl", info.rtl);
  JsonArray properties;
  for (const flow::TargetSpec& target : info.targets) {
    Json p;
    p.set("name", target.name);
    p.set("sva", target.sva);
    properties.push_back(p);
  }
  request.set("properties", Json(properties));
  request.set("max_k", 16);
  server.handle_line(request.dump(), log.sink());
  EXPECT_EQ(string_field(log.wait_for("\"withprops\""), "verdict"), "proven");

  // Same RTL, no property list: the idle session from the first request
  // (elaborated *with* its properties) must not be checked out — this
  // request elaborates fresh and fails with no-targets instead of
  // answering for a property set it never asked about.
  Json bare;
  bare.set("id", "noprops");
  bare.set("op", "verify");
  bare.set("rtl", info.rtl);
  server.handle_line(bare.dump(), log.sink());
  const Json without = log.wait_for("\"noprops\"");
  EXPECT_FALSE(bool_field(without, "ok"));
  EXPECT_EQ(string_field(without, "error"), "no-targets");
}

TEST(ServeProtocol, EditedFileOnDiskIsReElaborated) {
  ScopedTempDir dir;
  const std::string path = dir.path() + "/latch.aag";
  // Safe: the latch holds 0 forever and the bad literal is the latch itself.
  std::ofstream(path) << "aag 1 0 1 0 0 1\n2 2\n2\n";

  ServerOptions options;
  options.workers = 1;
  options.cache = false;  // isolate session reuse from the proof cache
  ResponseLog log;  // outlives the server: ~Server drains jobs into the sink
  Server server(options);

  Json safe;
  safe.set("id", "safe");
  safe.set("op", "verify");
  safe.set("file", path);
  safe.set("max_k", 4);
  server.handle_line(safe.dump(), log.sink());
  EXPECT_EQ(string_field(log.wait_for("\"safe\""), "verdict"), "proven");

  // Edit the file in place — the regression-farm loop this server exists
  // for. The bad literal is now the latch's negation, which holds at init;
  // the resubmission must elaborate the new content, not reuse the stale
  // session of the old one.
  std::this_thread::sleep_for(10ms);
  std::ofstream(path, std::ios::trunc)
      << "aag 1 0 1 0 0 1\n2 2\n3\nc\nedited\n";
  Json edited;
  edited.set("id", "edited");
  edited.set("op", "verify");
  edited.set("file", path);
  edited.set("max_k", 4);
  server.handle_line(edited.dump(), log.sink());
  EXPECT_EQ(string_field(log.wait_for("\"edited\""), "verdict"), "falsified");
}

// --- worker pool -------------------------------------------------------------

TEST(ServePool, SaturationRunsEveryJob) {
  WorkerPool pool(3);
  std::atomic<int> ran{0};
  for (int i = 0; i < 16; ++i) {
    EXPECT_TRUE(pool.submit("job" + std::to_string(i), 0.0,
                            [&ran](JobControl&) { ran.fetch_add(1); }));
  }
  pool.drain();
  EXPECT_EQ(ran.load(), 16);
  const WorkerPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.completed, 16u);
  EXPECT_EQ(stats.queued, 0u);
  EXPECT_EQ(stats.active, 0u);
  // A drained pool refuses new work.
  EXPECT_FALSE(pool.submit("late", 0.0, [](JobControl&) {}));
}

TEST(ServePool, CancelledWhileQueuedRunsWithTheStopFlagPreSet) {
  WorkerPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<bool> saw_stop{false};
  StopReason seen = StopReason::None;
  pool.submit("blocker", 0.0, [&release](JobControl&) {
    while (!release.load()) std::this_thread::sleep_for(1ms);
  });
  pool.submit("victim", 0.0, [&saw_stop, &seen](JobControl& control) {
    saw_stop.store(control.stopped());
    seen = control.stop_reason();
  });
  EXPECT_TRUE(pool.cancel("victim"));
  EXPECT_FALSE(pool.cancel("no_such_job"));
  release.store(true);
  pool.drain();
  EXPECT_TRUE(saw_stop.load());
  EXPECT_EQ(seen, StopReason::Cancel);
  EXPECT_EQ(pool.stats().cancelled, 1u);
}

TEST(ServePool, CancelStopsAnActiveJob) {
  WorkerPool pool(1);
  std::atomic<bool> started{false};
  StopReason seen = StopReason::None;
  pool.submit("spinner", 0.0, [&started, &seen](JobControl& control) {
    started.store(true);
    while (!control.stopped()) std::this_thread::sleep_for(1ms);
    seen = control.stop_reason();
  });
  while (!started.load()) std::this_thread::sleep_for(1ms);
  EXPECT_TRUE(pool.cancel("spinner"));
  pool.drain();
  EXPECT_EQ(seen, StopReason::Cancel);
}

TEST(ServePool, DeadlineStopsARunawayJob) {
  WorkerPool pool(1);
  StopReason seen = StopReason::None;
  pool.submit("runaway", 25.0, [&seen](JobControl& control) {
    while (!control.stopped()) std::this_thread::sleep_for(1ms);
    seen = control.stop_reason();
  });
  pool.drain();
  EXPECT_EQ(seen, StopReason::Deadline);
  EXPECT_EQ(pool.stats().deadlined, 1u);
}

TEST(ServePool, FirstStopReasonWins) {
  JobControl control;
  EXPECT_FALSE(control.stopped());
  control.request_stop(StopReason::Cancel);
  control.request_stop(StopReason::Deadline);
  EXPECT_TRUE(control.stopped());
  EXPECT_EQ(control.stop_reason(), StopReason::Cancel);
}

TEST(ServeProtocol, ShutdownDrainsInFlightJobs) {
  ServerOptions options;
  options.workers = 2;
  ResponseLog log;  // outlives the server: ~Server drains jobs into the sink
  Server server(options);

  for (int i = 0; i < 4; ++i) {
    Json request;
    request.set("id", i);
    request.set("op", "verify");
    request.set("design", "sequencer");
    request.set("max_k", 16);
    server.handle_line(request.dump(), log.sink());
  }
  server.handle_line(R"({"id":"bye","op":"shutdown"})", log.sink());

  // The shutdown ack arrives after the drain returns, and every submitted
  // job still got its own response.
  log.wait_for("\"bye\"");
  for (int i = 0; i < 4; ++i) {
    const Json response = log.wait_for(std::to_string(i), 5s);
    EXPECT_TRUE(bool_field(response, "ok"));
  }
}

// --- proof cache -------------------------------------------------------------

/// One-state micro system: c is 1-bit, starts at 1 and holds its value.
/// `c` itself is an inductive invariant; "c is 0" is refutable at init.
ir::TransitionSystem holding_bit_system() {
  ir::TransitionSystem ts;
  const ir::NodeRef c = ts.add_state("c", 1);
  ts.set_init(c, ts.nm().mk_true());
  ts.set_next(c, c);
  return ts;
}

/// ExchangedLit literals describe the blocked *cube*; the clause is its
/// negation, so a negated cube literal materializes as the positive bit.
mc::ExchangedClause unit_clause(std::size_t state, unsigned bit, bool negated) {
  mc::ExchangedClause clause;
  clause.lits.push_back(mc::ExchangedLit{state, bit, negated});
  return clause;
}

TEST(ServeCache, RecertifyAcceptsATrueInvariant) {
  const ir::TransitionSystem ts = holding_bit_system();
  CacheEntry entry;
  entry.depth = 1;
  entry.clauses.push_back(unit_clause(0, 0, true));  // clause: c
  const std::vector<ir::NodeRef> targets{ts.states()[0].var};
  const mc::EngineResult result = recertify(ts, targets, entry, mc::EngineOptions{});
  EXPECT_EQ(result.verdict, mc::Verdict::Proven);
  EXPECT_GT(result.stats.sat_calls, 0u);  // an actual SAT proof, not trust
}

TEST(ServeCache, RecertifyRejectsANonInductiveClause) {
  // Blinker: c starts at 1 and toggles, so "c is always 1" is not inductive.
  ir::TransitionSystem ts;
  const ir::NodeRef c = ts.add_state("c", 1);
  ts.set_init(c, ts.nm().mk_true());
  ts.set_next(c, ts.nm().mk_not(c));
  CacheEntry entry;
  entry.clauses.push_back(unit_clause(0, 0, true));  // clause: c
  const std::vector<ir::NodeRef> targets{ts.nm().mk_true()};
  const mc::EngineResult result = recertify(ts, targets, entry, mc::EngineOptions{});
  EXPECT_NE(result.verdict, mc::Verdict::Proven);
}

TEST(ServeCache, RecertifyFailsClosedOnClausesThatDoNotFit) {
  const ir::TransitionSystem ts = holding_bit_system();
  CacheEntry entry;
  entry.clauses.push_back(unit_clause(0, 0, true));   // clause: c — fits
  entry.clauses.push_back(unit_clause(7, 0, true));   // no such state
  const std::vector<ir::NodeRef> targets{ts.states()[0].var};
  const mc::EngineResult result = recertify(ts, targets, entry, mc::EngineOptions{});
  EXPECT_NE(result.verdict, mc::Verdict::Proven);
  EXPECT_EQ(result.stats.sat_calls, 0u);  // rejected before any solving
  // The near-miss payload keeps the fitting subset instead.
  EXPECT_EQ(surviving_clauses(ts, entry).size(), 1u);
}

TEST(ServeCache, StoreRequiresAProvenInvariant) {
  ProofCache cache(ProofCache::Options{});
  const ir::TransitionSystem ts = holding_bit_system();
  const std::vector<ir::NodeRef> targets{ts.states()[0].var};
  mc::EngineResult unknown;
  EXPECT_FALSE(cache.store("x", ts, targets, unknown));
  mc::EngineResult proven_empty;
  proven_empty.verdict = mc::Verdict::Proven;
  EXPECT_FALSE(cache.store("x", ts, targets, proven_empty));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ServeCache, ExactHitIsRecertifiedAndTamperingIsRejected) {
  flow::EngineSession session(designs::make_task("sequencer"));
  mc::EngineOptions options;
  options.max_steps = 16;
  const mc::EngineResult cold = session.run_job(mc::EngineKind::Pdr, options);
  ASSERT_EQ(cold.verdict, mc::Verdict::Proven);
  ASSERT_FALSE(cold.invariant.empty());

  const ir::TransitionSystem& ts = session.task().ts;
  const std::vector<ir::NodeRef> targets = session.task().target_exprs();
  ProofCache cache(ProofCache::Options{});
  ASSERT_TRUE(cache.store("sequencer", ts, targets, cold));

  const CacheLookup lookup = cache.lookup(ts, targets);
  ASSERT_EQ(lookup.outcome, CacheOutcome::Exact);
  EXPECT_EQ(lookup.similarity, 1.0);

  // Independent SAT cross-check: the stored invariant re-certifies.
  const mc::EngineResult certified = recertify(ts, targets, *lookup.entry, options);
  EXPECT_EQ(certified.verdict, mc::Verdict::Proven);
  EXPECT_LT(certified.stats.sat_calls, cold.stats.sat_calls);

  // A tampered entry (contradictory clauses) fails the same cross-check —
  // the cache layer never takes a stored verdict on faith.
  CacheEntry corrupted = *lookup.entry;
  corrupted.clauses.push_back(unit_clause(0, 0, false));
  corrupted.clauses.push_back(unit_clause(0, 0, true));
  const mc::EngineResult rejected = recertify(ts, targets, corrupted, options);
  EXPECT_NE(rejected.verdict, mc::Verdict::Proven);

  // Invalidation drops the entry, so the next lookup is a miss.
  cache.invalidate(lookup.entry->sys_hash, lookup.entry->prop_hash);
  EXPECT_EQ(cache.lookup(ts, targets).outcome, CacheOutcome::Miss);
}

TEST(ServeCache, EntryTextRoundTripsAndEveryCorruptionIsRejected) {
  CacheEntry entry;
  entry.design = "micro";
  entry.sys_hash = 0x0123456789abcdefULL;
  entry.prop_hash = 0xfedcba9876543210ULL;
  entry.depth = 7;
  entry.state_sigs.push_back(ir::StateSig{4, 0x1111222233334444ULL});
  entry.state_sigs.push_back(ir::StateSig{1, 0x5555666677778888ULL});
  entry.clauses.push_back(unit_clause(0, 3, true));
  mc::ExchangedClause wide;
  wide.lits.push_back(mc::ExchangedLit{1, 0, false});
  wide.lits.push_back(mc::ExchangedLit{0, 2, true});
  // Cache entries hold a final invariant, so the format only carries proven
  // clauses; a frame level would not survive the round trip.
  entry.clauses.push_back(wide);

  const std::string text = ProofCache::render_entry(entry);
  const CacheEntry back = ProofCache::parse_entry(text);
  EXPECT_EQ(back.design, entry.design);
  EXPECT_EQ(back.sys_hash, entry.sys_hash);
  EXPECT_EQ(back.prop_hash, entry.prop_hash);
  EXPECT_EQ(back.depth, entry.depth);
  EXPECT_EQ(back.state_sigs, entry.state_sigs);
  ASSERT_EQ(back.clauses.size(), entry.clauses.size());
  for (std::size_t i = 0; i < back.clauses.size(); ++i) {
    EXPECT_EQ(mc::exchange_key(back.clauses[i]), mc::exchange_key(entry.clauses[i]));
  }
  EXPECT_EQ(ProofCache::render_entry(back), text);

  const std::string corruptions[] = {
      "",                                          // empty file
      "# some other format\n",                     // wrong header
      text.substr(0, text.size() / 2),             // truncated
      text + "trailing junk\n",                    // extra content
      [&] {                                        // broken clause literal
        std::string t = text;
        t.replace(t.find("0.3-"), 4, "0.z-");
        return t;
      }(),
      [&] {                                        // count mismatch
        std::string t = text;
        t.replace(t.find("states 2"), 8, "states 3");
        return t;
      }(),
      [&] {                                        // non-hex hash
        std::string t = text;
        t.replace(t.find("0123456789abcdef"), 16, "0123456789abcdeg");
        return t;
      }(),
  };
  for (const std::string& corrupt : corruptions) {
    try {
      ProofCache::parse_entry(corrupt);
      ADD_FAILURE() << "parse_entry accepted a corrupted entry:\n" << corrupt;
    } catch (const ParseError& e) {
      EXPECT_NE(std::string(e.what()).find("pcache:"), std::string::npos) << e.what();
    }
  }
}

TEST(ServeCache, LoadRejectsCorruptFilesAndKeepsGoodOnes) {
  ScopedTempDir dir;
  CacheEntry entry;
  entry.design = "micro";
  entry.sys_hash = 1;
  entry.prop_hash = 2;
  entry.depth = 1;
  entry.state_sigs.push_back(ir::StateSig{1, 42});
  entry.clauses.push_back(unit_clause(0, 0, false));
  std::ofstream(dir.path() + "/good.pcache") << ProofCache::render_entry(entry);
  std::ofstream(dir.path() + "/bad.pcache") << "# genfv-proof-cache 1\ndesign\n";
  std::ofstream(dir.path() + "/ignored.txt") << "not a cache file";

  ProofCache cache(ProofCache::Options{dir.path(), 0.5});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.rejected_files(), 1u);
}

TEST(ServeCache, PersistsAcrossInstancesAndFreshElaboration) {
  ScopedTempDir dir;
  {
    flow::EngineSession session(designs::make_task("sequencer"));
    mc::EngineOptions options;
    options.max_steps = 16;
    const mc::EngineResult cold = session.run_job(mc::EngineKind::Pdr, options);
    ASSERT_EQ(cold.verdict, mc::Verdict::Proven);
    ProofCache cache(ProofCache::Options{dir.path(), 0.5});
    ASSERT_TRUE(cache.store("sequencer", session.task().ts,
                            session.task().target_exprs(), cold));
  }

  // A new cache instance over the same directory sees the entry, and a
  // freshly elaborated task (new NodeManager, new node ids) still hits it
  // exactly and re-certifies — the key is structural, not identity-based.
  ProofCache reloaded(ProofCache::Options{dir.path(), 0.5});
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.rejected_files(), 0u);

  flow::VerificationTask fresh = designs::make_task("sequencer");
  const std::vector<ir::NodeRef> targets = fresh.target_exprs();
  const CacheLookup lookup = reloaded.lookup(fresh.ts, targets);
  ASSERT_EQ(lookup.outcome, CacheOutcome::Exact);
  const mc::EngineResult certified =
      recertify(fresh.ts, targets, *lookup.entry, mc::EngineOptions{});
  EXPECT_EQ(certified.verdict, mc::Verdict::Proven);
}

TEST(ServeCache, BogusSeedCandidatesNeverChangeTheVerdict) {
  // Seed a run with contradictory candidate clauses: the may-proof
  // discipline must retract them and still prove the design.
  flow::EngineSession session(designs::make_task("sequencer"));
  const ir::TransitionSystem& ts = session.task().ts;

  mc::EngineOptions cold_options;
  cold_options.max_steps = 16;
  const mc::EngineResult cold = session.run_job(mc::EngineKind::Pdr, cold_options);
  ASSERT_EQ(cold.verdict, mc::Verdict::Proven);

  mc::EngineOptions warm_options = cold_options;
  warm_options.pdr_seed_candidates = true;
  const ir::NodeRef bit0 = mc::materialize(unit_clause(0, 0, false), ts);
  const ir::NodeRef not_bit0 = mc::materialize(unit_clause(0, 0, true), ts);
  ASSERT_NE(bit0, nullptr);
  ASSERT_NE(not_bit0, nullptr);
  warm_options.pdr_candidate_lemmas = {bit0, not_bit0};
  const mc::EngineResult warm = session.run_job(mc::EngineKind::Pdr, warm_options);
  // The bogus candidates may cost frames or conflicts, but never the verdict.
  EXPECT_EQ(warm.verdict, cold.verdict);
}

TEST(ServeCache, WarmSeedingKeepsEveryZooVerdict) {
  // Cold-vs-warm sweep over the zoo: seeding a run with its own cached
  // clauses must reproduce the cold verdict everywhere, and actually seed.
  mc::EngineOptions cold_options;
  cold_options.max_steps = 8;
  std::size_t proven = 0;
  for (const designs::DesignInfo& info : designs::all_designs()) {
    flow::EngineSession session(designs::make_task(info.name));
    const mc::EngineResult cold = session.run_job(mc::EngineKind::Pdr, cold_options);
    if (cold.verdict != mc::Verdict::Proven || cold.invariant.empty()) continue;
    ++proven;

    ProofCache cache(ProofCache::Options{});
    const std::vector<ir::NodeRef> targets = session.task().target_exprs();
    ASSERT_TRUE(cache.store(info.name, session.task().ts, targets, cold))
        << info.name;
    const CacheLookup lookup = cache.lookup(session.task().ts, targets);
    ASSERT_EQ(lookup.outcome, CacheOutcome::Exact) << info.name;

    mc::EngineOptions warm_options = cold_options;
    warm_options.pdr_seed_candidates = true;
    warm_options.pdr_candidate_lemmas =
        surviving_clauses(session.task().ts, *lookup.entry);
    ASSERT_FALSE(warm_options.pdr_candidate_lemmas.empty()) << info.name;
    const mc::EngineResult warm = session.run_job(mc::EngineKind::Pdr, warm_options);
    EXPECT_EQ(warm.verdict, cold.verdict) << info.name;
    EXPECT_GT(warm.stats.candidates_seeded, 0u) << info.name;
  }
  // The sweep must not be vacuous.
  EXPECT_GE(proven, 2u);
}

TEST(ServeCache, InterruptedRecertificationNeverDestroysTheEntry) {
  ServerOptions options;
  options.workers = 1;
  ResponseLog log;  // outlives the server: ~Server drains jobs into the sink
  Server server(options);

  server.handle_line(
      R"({"id":"cold","op":"verify","design":"sequencer","max_k":16})",
      log.sink());
  ASSERT_EQ(string_field(log.wait_for("\"cold\""), "verdict"), "proven");
  ASSERT_EQ(server.cache().size(), 1u);

  // Jobs whose deadline trips mid-recertification fail the induction check
  // through the stop flag, not on the merits: an interrupted check is not a
  // refutation and must not invalidate the persisted proof. The deadline
  // spread brackets the sub-millisecond recertification window; whether a
  // given deadline lands while queued, mid-check, or after the hit
  // completes, the entry survives.
  const double deadlines_ms[] = {0.05, 0.1, 0.2, 0.3, 0.5, 1.0, 2.0, 4.0};
  int i = 0;
  for (const double deadline_ms : deadlines_ms) {
    Json request;
    request.set("id", "d" + std::to_string(i));
    request.set("op", "verify");
    request.set("design", "sequencer");
    request.set("max_k", 16);
    request.set("deadline_ms", deadline_ms);
    server.handle_line(request.dump(), log.sink());
    log.wait_for("\"d" + std::to_string(i) + "\"");
    EXPECT_EQ(server.cache().size(), 1u) << "deadline_ms=" << deadline_ms;
    ++i;
  }

  server.handle_line(
      R"({"id":"warm","op":"verify","design":"sequencer","max_k":16})",
      log.sink());
  const Json warm = log.wait_for("\"warm\"");
  EXPECT_EQ(string_field(warm, "verdict"), "proven");
  EXPECT_EQ(string_field(warm, "cache"), "hit");
}

// --- end-to-end incremental re-verification ----------------------------------

TEST(ServeIncremental, OneExpressionEditWarmStartsFromSurvivingClauses) {
  ServerOptions options;
  options.workers = 1;
  options.near_threshold = 0.4;
  ResponseLog log;  // outlives the server: ~Server drains jobs into the sink
  Server server(options);

  const designs::DesignInfo& info = designs::design_by_name("updown_pair");
  const auto submit = [&](const std::string& id, const std::string& rtl,
                          bool use_cache) {
    Json request;
    request.set("id", id);
    request.set("op", "verify");
    request.set("rtl", rtl);
    JsonArray properties;
    for (const flow::TargetSpec& target : info.targets) {
      Json p;
      p.set("name", target.name);
      p.set("sva", target.sva);
      properties.push_back(p);
    }
    request.set("properties", Json(properties));
    request.set("engine", "pdr");
    request.set("max_k", 32);
    if (!use_cache) request.set("cache", false);
    server.handle_line(request.dump(), log.sink());
    return log.wait_for("\"" + id + "\"");
  };

  // Cold submission populates the cache.
  const Json cold = submit("cold", info.rtl, true);
  ASSERT_EQ(string_field(cold, "verdict"), "proven");
  ASSERT_EQ(string_field(cold, "cache"), "miss");

  // One-expression edit: an unrelated heartbeat register joins the design.
  // The existing registers (and the cached clauses over them) are untouched.
  std::string edited = info.rtl;
  const struct {
    const char* from;
    const char* to;
  } surgery[] = {
      {"output logic [11:0] lead, lag);",
       "output logic [11:0] lead, lag);\n  logic [3:0] beat;"},
      {"lag  <= 12'd0;", "lag  <= 12'd0; beat <= 4'd0;"},
      {"lag  <= lag + 12'd1;", "lag  <= lag + 12'd1; beat <= beat + 4'd1;"},
      {"lag  <= lag - 12'd1;", "lag  <= lag - 12'd1; beat <= beat + 4'd1;"},
  };
  for (const auto& edit : surgery) {
    const std::size_t at = edited.find(edit.from);
    ASSERT_NE(at, std::string::npos) << edit.from;
    edited.replace(at, std::string(edit.from).size(), edit.to);
  }

  // The edited design is a near miss: same verdict, and PDR starts warm
  // from the surviving clauses instead of from scratch.
  const Json warm = submit("warm", edited, true);
  EXPECT_EQ(string_field(warm, "verdict"), "proven");
  EXPECT_EQ(string_field(warm, "cache"), "near");
  EXPECT_GT(number_field(warm, "candidates_seeded"), 0.0);

  // Against a cold run of the same edited design, the warm start saves
  // conflicts (the telemetry counters in the response pin this).
  const Json edited_cold = submit("edited_cold", edited, false);
  ASSERT_EQ(string_field(edited_cold, "verdict"), "proven");
  const double cold_conflicts = number_field(edited_cold, "conflicts");
  if (cold_conflicts > 0.0) {
    EXPECT_LT(number_field(warm, "conflicts"), cold_conflicts);
  }
}

// --- socket transport --------------------------------------------------------

/// Connect to the daemon's AF_UNIX socket, send one request line, read one
/// response line, hang up. Returns "" on any failure (callers assert).
std::string socket_round_trip(const std::string& path, const std::string& request) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    ::close(fd);
    return "";
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const std::string line = request + "\n";
  if (::send(fd, line.data(), line.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(line.size())) {
    ::close(fd);
    return "";
  }
  std::string buffer;
  char chunk[512];
  while (buffer.find('\n') == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return buffer.substr(0, buffer.find('\n'));
}

std::size_t open_fd_count() {
  std::size_t count = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator("/proc/self/fd")) {
    (void)entry;
    ++count;
  }
  return count;
}

TEST(ServeSocket, HungUpClientsAreReapedNotLeaked) {
  ScopedTempDir dir;
  const std::string sock = dir.path() + "/serve.sock";
  ServerOptions options;
  options.workers = 1;
  Server server(options);
  std::thread transport([&server, &sock] { server.run_socket(sock); });

  // Wait for the listener, priming one connection to absorb one-time fds.
  std::string primer;
  for (int attempt = 0; attempt < 250 && primer.empty(); ++attempt) {
    std::this_thread::sleep_for(20ms);
    primer = socket_round_trip(sock, R"({"id":0,"op":"status"})");
  }
  ASSERT_FALSE(primer.empty()) << "daemon never answered on " << sock;

  // Each accept-loop iteration (<= 200ms apart) sweeps hung-up connections.
  std::this_thread::sleep_for(600ms);
  const std::size_t baseline = open_fd_count();

  constexpr int kClients = 20;
  for (int c = 1; c <= kClients; ++c) {
    Json request;
    request.set("id", c);
    request.set("op", "status");
    EXPECT_FALSE(socket_round_trip(sock, request.dump()).empty()) << c;
  }
  std::this_thread::sleep_for(600ms);
  // A resident daemon must not hold one fd per dead client until shutdown.
  EXPECT_LE(open_fd_count(), baseline + 4) << "connection fds leaked";

  server.begin_shutdown();
  transport.join();
}

// --- concurrent clients (TSan rides the *MultiWorker* filter) ----------------

TEST(ServeMultiWorker, ConcurrentClientsGetEveryResponseExactlyOnce) {
  ServerOptions options;
  options.workers = 4;
  ResponseLog log;  // outlives the server: ~Server drains jobs into the sink
  Server server(options);

  constexpr int kClients = 6;
  constexpr int kVerifiesPerClient = 2;
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, &log, c] {
      const Server::Sink sink = log.sink();
      for (int i = 0; i < kVerifiesPerClient; ++i) {
        Json request;
        request.set("id", "c" + std::to_string(c) + "-" + std::to_string(i));
        request.set("op", "verify");
        request.set("design", "sequencer");
        request.set("max_k", 16);
        server.handle_line(request.dump(), sink);
      }
      Json status;
      status.set("id", "s" + std::to_string(c));
      status.set("op", "status");
      server.handle_line(status.dump(), sink);
    });
  }
  for (std::thread& client : clients) client.join();

  for (int c = 0; c < kClients; ++c) {
    for (int i = 0; i < kVerifiesPerClient; ++i) {
      const std::string id = "\"c" + std::to_string(c) + "-" + std::to_string(i) + "\"";
      const Json response = log.wait_for(id);
      EXPECT_TRUE(bool_field(response, "ok")) << response.dump();
      EXPECT_EQ(string_field(response, "verdict"), "proven") << response.dump();
    }
    log.wait_for("\"s" + std::to_string(c) + "\"");
  }
  server.begin_shutdown();
  EXPECT_EQ(log.size(),
            static_cast<std::size_t>(kClients * (kVerifiesPerClient + 1)));
}

}  // namespace
}  // namespace genfv::serve
