/// Lexer and parser tests for the Verilog subset: literals, operators,
/// comments, precedence, statements, port styles, and diagnostics with
/// line:column locations.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "hdl/lexer.hpp"
#include "hdl/parser.hpp"

namespace genfv::hdl {
namespace {

TEST(Lexer, IdentifiersKeywordsAndSystemNames) {
  const auto tokens = lex("module foo $past _x9 endmodule");
  ASSERT_EQ(tokens.size(), 6u);  // 5 identifiers + End
  EXPECT_TRUE(tokens[0].is_id("module"));
  EXPECT_TRUE(tokens[2].is_id("$past"));
  EXPECT_TRUE(tokens[3].is_id("_x9"));
  EXPECT_TRUE(tokens[5].is(TokKind::End));
}

TEST(Lexer, SizedLiterals) {
  const auto tokens = lex("32'b0 8'hFF 4'd12 16'hde_ad 'h7 3'b1x1");
  EXPECT_EQ(tokens[0].value, 0u);
  EXPECT_EQ(tokens[0].width, 32u);
  EXPECT_TRUE(tokens[0].sized);
  EXPECT_EQ(tokens[1].value, 0xFFu);
  EXPECT_EQ(tokens[1].width, 8u);
  EXPECT_EQ(tokens[2].value, 12u);
  EXPECT_EQ(tokens[3].value, 0xdeadu);  // underscores skipped
  EXPECT_EQ(tokens[4].value, 7u);
  EXPECT_FALSE(tokens[4].sized);  // 'h7 has no size prefix
  EXPECT_EQ(tokens[5].value, 0b101u);  // x collapses to 0
}

TEST(Lexer, BareDecimalDefaultsTo32Unsized) {
  const auto tokens = lex("42");
  EXPECT_EQ(tokens[0].value, 42u);
  EXPECT_EQ(tokens[0].width, 32u);
  EXPECT_FALSE(tokens[0].sized);
}

TEST(Lexer, MultiCharOperatorsGreedyMatch) {
  const auto tokens = lex("|-> |=> <<< >>> <= >= == != && || ~^ << >> ++");
  const char* expected[] = {"|->", "|=>", "<<<", ">>>", "<=", ">=", "==",
                            "!=",  "&&",  "||",  "~^",  "<<", ">>", "++"};
  for (std::size_t i = 0; i < std::size(expected); ++i) {
    EXPECT_TRUE(tokens[i].is_punct(expected[i])) << i << ": " << tokens[i].text;
  }
}

TEST(Lexer, CommentsAreSkipped) {
  const auto tokens = lex("a // line comment\n/* block\ncomment */ b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_TRUE(tokens[0].is_id("a"));
  EXPECT_TRUE(tokens[1].is_id("b"));
  EXPECT_EQ(tokens[1].line, 3);  // line tracking across comments
}

TEST(Lexer, Diagnostics) {
  EXPECT_THROW(lex("4'q0"), ParseError);        // unknown base
  EXPECT_THROW(lex("8'h"), ParseError);         // no digits
  EXPECT_THROW(lex("128'h0"), ParseError);      // width cap
  EXPECT_THROW(lex("/* open"), ParseError);     // unterminated comment
  EXPECT_THROW(lex("`define"), ParseError);     // unsupported char
}

// --- expressions ---------------------------------------------------------------

ExprPtr parse_ok(const std::string& text) {
  ExprPtr e = parse_expression(text);
  EXPECT_NE(e, nullptr);
  return e;
}

TEST(Parser, PrecedenceMulOverAdd) {
  const ExprPtr e = parse_ok("a + b * c");
  ASSERT_EQ(e->kind, Expr::Kind::Binary);
  EXPECT_EQ(e->text, "+");
  EXPECT_EQ(e->args[1]->text, "*");
}

TEST(Parser, PrecedenceCompareOverLogical) {
  const ExprPtr e = parse_ok("a == b && c < d");
  EXPECT_EQ(e->text, "&&");
  EXPECT_EQ(e->args[0]->text, "==");
  EXPECT_EQ(e->args[1]->text, "<");
}

TEST(Parser, ImplicationIsLowestAndRightAssociative) {
  const ExprPtr e = parse_ok("a && b |-> c |-> d");
  EXPECT_EQ(e->text, "|->");
  EXPECT_EQ(e->args[0]->text, "&&");
  EXPECT_EQ(e->args[1]->text, "|->");
}

TEST(Parser, TernaryConcatReplication) {
  const ExprPtr t = parse_ok("c ? a : b");
  EXPECT_EQ(t->kind, Expr::Kind::Ternary);
  const ExprPtr cc = parse_ok("{a, b, 2'b01}");
  EXPECT_EQ(cc->kind, Expr::Kind::Concat);
  EXPECT_EQ(cc->args.size(), 3u);
  const ExprPtr rr = parse_ok("{4{x}}");
  EXPECT_EQ(rr->kind, Expr::Kind::Repl);
  EXPECT_EQ(rr->value, 4u);
}

TEST(Parser, SelectsAndCalls) {
  const ExprPtr idx = parse_ok("mem[i]");
  EXPECT_EQ(idx->kind, Expr::Kind::Index);
  const ExprPtr rng = parse_ok("bus[7:0]");
  EXPECT_EQ(rng->kind, Expr::Kind::Range);
  EXPECT_EQ(rng->msb, 7u);
  const ExprPtr call = parse_ok("$past(x, 2)");
  EXPECT_EQ(call->kind, Expr::Kind::Call);
  EXPECT_EQ(call->text, "$past");
  EXPECT_EQ(call->args.size(), 2u);
  // Chained postfix: $countones(x)'s result is not indexable in our subset,
  // but nested selects are.
  const ExprPtr nested = parse_ok("bus[7:4][1]");
  EXPECT_EQ(nested->kind, Expr::Kind::Index);
}

TEST(Parser, UnaryReductionsAndLogicalNot) {
  const ExprPtr e = parse_ok("&count1");
  EXPECT_EQ(e->kind, Expr::Kind::Unary);
  EXPECT_EQ(e->text, "&");
  const ExprPtr n = parse_ok("!(~|x)");
  EXPECT_EQ(n->text, "!");
  EXPECT_EQ(n->args[0]->text, "~|");
}

TEST(Parser, ExpressionDiagnostics) {
  EXPECT_THROW(parse_expression("a +"), ParseError);
  EXPECT_THROW(parse_expression("(a"), ParseError);
  EXPECT_THROW(parse_expression("a b"), ParseError);       // trailing tokens
  EXPECT_THROW(parse_expression("bus[x:0]"), ParseError);  // non-const select
  EXPECT_THROW(parse_expression("module"), ParseError);    // keyword as expr
}

// --- modules -------------------------------------------------------------------

TEST(Parser, PaperListing1ParsesVerbatim) {
  const Module m = parse_module(R"(
module sync_counters (input clk, rst, output logic [31:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 32'b0;
      count2 <= 32'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
)");
  EXPECT_EQ(m.name, "sync_counters");
  ASSERT_EQ(m.signals.size(), 4u);
  EXPECT_EQ(m.signals[0].name, "clk");
  EXPECT_EQ(m.signals[0].dir, PortDir::Input);
  EXPECT_EQ(m.signals[2].name, "count1");
  EXPECT_EQ(m.signals[2].dir, PortDir::Output);
  EXPECT_EQ(m.signals[2].width, 32u);
  EXPECT_EQ(m.signals[3].width, 32u);  // sticky width across the comma
  ASSERT_EQ(m.always_blocks.size(), 1u);
  EXPECT_EQ(m.always_blocks[0].clock, "clk");
  EXPECT_EQ(m.always_blocks[0].reset, "rst");
  EXPECT_FALSE(m.always_blocks[0].reset_active_low);
}

TEST(Parser, BodyDeclarationsAndAssigns) {
  const Module m = parse_module(R"(
module top (input a, output y);
  wire [3:0] w1, w2;
  logic r = 1'b0;
  localparam WIDTH = 4;
  assign y = a & w1[0];
  assign w1 = {w2[2:0], a};
endmodule
)");
  EXPECT_EQ(m.params.size(), 1u);
  EXPECT_EQ(m.assigns.size(), 2u);
  bool found_init = false;
  for (const auto& s : m.signals) {
    if (s.name == "r") found_init = (s.init != nullptr);
  }
  EXPECT_TRUE(found_init);
}

TEST(Parser, AlwaysVariantsAndCase) {
  const Module m = parse_module(R"(
module fsm (input clk, input [1:0] sel, output logic [1:0] q, output logic [1:0] d);
  always_comb begin
    case (sel)
      2'd0: d = 2'd3;
      2'd1, 2'd2: d = 2'd1;
      default: d = 2'd0;
    endcase
  end
  always_ff @(posedge clk) q <= d;
endmodule
)");
  ASSERT_EQ(m.always_blocks.size(), 2u);
  EXPECT_TRUE(m.always_blocks[0].combinational);
  EXPECT_FALSE(m.always_blocks[1].combinational);
  const Stmt& body = *m.always_blocks[0].body;
  ASSERT_EQ(body.kind, Stmt::Kind::Block);
  ASSERT_EQ(body.body[0]->kind, Stmt::Kind::Case);
  EXPECT_EQ(body.body[0]->items.size(), 3u);
  EXPECT_EQ(body.body[0]->items[1].labels.size(), 2u);  // grouped labels
  EXPECT_TRUE(body.body[0]->items[2].labels.empty());   // default
}

TEST(Parser, NegedgeResetAndAlwaysStar) {
  const Module m = parse_module(R"(
module r (input clk, rst_n, input d, output logic q, output logic g);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b0;
    else q <= d;
  end
  always @(*) g = q & d;
endmodule
)");
  EXPECT_EQ(m.always_blocks[0].reset, "rst_n");
  EXPECT_TRUE(m.always_blocks[0].reset_active_low);
  EXPECT_TRUE(m.always_blocks[1].combinational);
}

TEST(Parser, ModuleDiagnostics) {
  EXPECT_THROW(parse_module("module m (input a) endmodule"), ParseError);  // missing ;
  EXPECT_THROW(parse_module("module m; assign x = ; endmodule"), ParseError);
  EXPECT_THROW(parse_module("module m; always @(bogus) x <= 1; endmodule"), ParseError);
  EXPECT_THROW(parse_module("module m; logic [0:7] x; endmodule"), ParseError);  // lsb!=0
  EXPECT_THROW(parse_module("module m; logic [64:0] x; endmodule"), ParseError); // >64
  EXPECT_THROW(parse_module("module m; if (x) y <= 1; endmodule"), ParseError);
  try {
    parse_module("module m;\n  bogus!\nendmodule");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("2:"), std::string::npos)
        << "diagnostic should carry the line number: " << e.what();
  }
}

}  // namespace
}  // namespace genfv::hdl
