/// Unit tests for the util module: RNG determinism/uniformity, string
/// helpers, table rendering.

#include <gtest/gtest.h>

#include <set>

#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace genfv::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Xoshiro256 a(1234);
  Xoshiro256 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, BelowIsInRangeAndCoversValues) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all residues hit in 1000 draws
}

TEST(Rng, RangeInclusive) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 200; ++i) {
    const auto v = rng.range(5, 7);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 7u);
  }
}

TEST(Rng, BitsMasksToWidth) {
  Xoshiro256 rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_LE(rng.bits(5), 31u);
    EXPECT_LE(rng.bits(1), 1u);
  }
  EXPECT_THROW(rng.bits(0), Error);
  EXPECT_THROW(rng.bits(65), Error);
}

TEST(Rng, ChanceExtremes) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, RealInUnitInterval) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 500; ++i) {
    const double r = rng.real();
    EXPECT_GE(r, 0.0);
    EXPECT_LT(r, 1.0);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Xoshiro256 rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Strings, SplitKeepsEmptyFields) {
  const auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[1], "");
}

TEST(Strings, SplitWsDropsAllWhitespace) {
  const auto parts = split_ws("  foo\t bar\nbaz  ");
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "foo");
  EXPECT_EQ(parts[2], "baz");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x y  "), "x y");
  EXPECT_EQ(trim("\t\n"), "");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, JoinAndAffixes) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_TRUE(starts_with("foobar", "foo"));
  EXPECT_FALSE(starts_with("fo", "foo"));
  EXPECT_TRUE(ends_with("foobar", "bar"));
  EXPECT_TRUE(contains("foobar", "oba"));
}

TEST(Strings, HexLiteral) {
  EXPECT_EQ(hex_literal(0xdeadbeef, 32), "32'hdeadbeef");
  EXPECT_EQ(hex_literal(0xff, 4), "4'hf");  // masked to width
  EXPECT_EQ(hex_literal(1, 1), "1'h1");
}

TEST(Strings, BinString) {
  EXPECT_EQ(bin_string(0b1010, 4), "1010");
  EXPECT_EQ(bin_string(1, 3), "001");
}

TEST(Strings, Indent) {
  EXPECT_EQ(indent("a\nb", 2), "  a\n  b");
}

TEST(Table, AlignedRendering) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos);
}

TEST(Table, RowArityChecked) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Table, Csv) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.to_csv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace genfv::util
