/// Design-zoo tests, parameterized over every registered design: the RTL
/// elaborates, targets compile, target properties are genuine invariants
/// (long constrained-random simulation finds no violation), and the
/// difficulty metadata is accurate — designs marked as needing lemmas really
/// do fail plain k-induction, with an induction-step CEX to show for it.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "designs/design.hpp"
#include "mc/kinduction.hpp"
#include "sim/random_sim.hpp"

namespace genfv::designs {
namespace {

class DesignZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(DesignZoo, ElaboratesWithTargets) {
  const DesignInfo& info = design_by_name(GetParam());
  EXPECT_FALSE(info.spec.empty());
  EXPECT_FALSE(info.description.empty());
  auto task = make_task(info);
  EXPECT_EQ(task.name, info.name);
  EXPECT_EQ(task.target_indices.size(), info.targets.size());
  EXPECT_FALSE(task.ts.states().empty());
  EXPECT_NO_THROW(task.ts.validate());
}

TEST_P(DesignZoo, TargetsSurviveLongRandomSimulation) {
  auto task = make_task(GetParam());
  sim::RandomSimulator simulator(task.ts, 0xC0FFEE);
  for (const ir::NodeRef target : task.target_exprs()) {
    const auto witness = simulator.falsify(target, 400, 5);
    EXPECT_FALSE(witness.has_value())
        << GetParam() << ": target violated at frame " << witness->size() - 1;
  }
}

TEST_P(DesignZoo, DifficultyMetadataIsAccurate) {
  const DesignInfo& info = design_by_name(GetParam());
  auto task = make_task(info);
  mc::KInductionEngine engine(task.ts, {.max_k = 4});
  const mc::InductionResult result = engine.prove_all(task.target_exprs());
  if (info.inductive_without_lemmas) {
    EXPECT_EQ(result.verdict, mc::Verdict::Proven) << info.name;
  } else {
    EXPECT_EQ(result.verdict, mc::Verdict::Unknown) << info.name;
    // The induction-step failure artefact (paper Fig. 2/3) must exist, keep
    // the property on all frames but the last, and break it at the last.
    ASSERT_TRUE(result.step_cex.has_value()) << info.name;
    const auto& cex = *result.step_cex;
    EXPECT_TRUE(cex.is_consistent());
    ir::NodeRef conjunction = task.ts.nm().mk_true();
    for (const ir::NodeRef t : task.target_exprs()) {
      conjunction = task.ts.nm().mk_and(conjunction, t);
    }
    EXPECT_EQ(cex.value(conjunction, cex.size() - 1), 0u);
    for (std::size_t f = 0; f + 1 < cex.size(); ++f) {
      EXPECT_EQ(cex.value(conjunction, f), 1u);
    }
  }
}

std::vector<std::string> all_names() {
  std::vector<std::string> names;
  for (const auto& d : all_designs()) names.push_back(d.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Zoo, DesignZoo, ::testing::ValuesIn(all_names()),
                         [](const auto& info) { return info.param; });

TEST(DesignRegistry, StableContents) {
  const auto& designs = all_designs();
  EXPECT_GE(designs.size(), 11u);
  // The paper's two families must be present.
  EXPECT_EQ(design_by_name("sync_counters").category, "counters");
  EXPECT_EQ(design_by_name("hamming74").category, "ecc");
  EXPECT_EQ(design_by_name("secded84").category, "ecc");
  EXPECT_THROW(design_by_name("not_a_design"), UsageError);
  // Listing 1 is reproduced verbatim enough to contain the ++ idiom.
  EXPECT_NE(design_by_name("sync_counters").rtl.find("count1++"), std::string::npos);
}

TEST(DesignRegistry, CategoriesCoverTheEvaluationFamilies) {
  std::set<std::string> categories;
  for (const auto& d : all_designs()) categories.insert(d.category);
  EXPECT_TRUE(categories.contains("counters"));
  EXPECT_TRUE(categories.contains("ecc"));
  EXPECT_TRUE(categories.contains("fsm"));
  EXPECT_TRUE(categories.contains("datapath"));
}

TEST(Hamming74, DecoderActuallyCorrectsEverySingleBitError) {
  // Directed check of the ECC datapath through the simulator: for every
  // 4-bit word and every injected error position, decoded == original.
  auto task = make_task("hamming74");
  auto& ts = task.ts;
  const ir::NodeRef decoded = ts.lookup("decoded");
  ASSERT_NE(decoded, nullptr);
  const ir::NodeRef cw = ts.lookup("cw");
  const ir::NodeRef shadow = ts.lookup("shadow");
  const ir::NodeRef inject = ts.lookup("inject");
  const ir::NodeRef err_pos = ts.lookup("err_pos");
  const ir::NodeRef en = ts.lookup("en");
  const ir::NodeRef din = ts.lookup("din");
  const ir::NodeRef rst = ts.lookup("rst");

  for (std::uint64_t word = 0; word < 16; ++word) {
    // Encode by stepping the design once with en=1.
    sim::Assignment env{{cw, 0},     {shadow, 0}, {inject, 0}, {err_pos, 0},
                        {en, 1},     {din, word}, {rst, 0}};
    const auto next = sim::step(ts, env);
    for (std::uint64_t pos = 0; pos < 8; ++pos) {  // 7 = shift-out, no error
      sim::Assignment decode_env{{cw, next.at(cw)}, {shadow, next.at(shadow)},
                                 {inject, 1},       {err_pos, pos},
                                 {en, 0},           {din, 0},
                                 {rst, 0}};
      EXPECT_EQ(sim::evaluate(decoded, decode_env), word)
          << "word " << word << " err_pos " << pos;
    }
  }
}

TEST(Secded84, NeverFlagsDoubleErrorUnderSingleInjection) {
  auto task = make_task("secded84");
  auto& ts = task.ts;
  const ir::NodeRef ded = ts.lookup("ded");
  ASSERT_NE(ded, nullptr);
  sim::RandomSimulator simulator(ts, 99);
  const sim::Trace trace = simulator.run(300);
  for (std::size_t f = 0; f < trace.size(); ++f) {
    ASSERT_EQ(trace.value(ded, f), 0u) << "frame " << f;
  }
}

TEST(FifoCtrl, OccupancyTracksPointersInSimulation) {
  auto task = make_task("fifo_ctrl");
  auto& ts = task.ts;
  const ir::NodeRef wptr = ts.lookup("wptr");
  const ir::NodeRef rptr = ts.lookup("rptr");
  const ir::NodeRef count = ts.lookup("count");
  sim::RandomSimulator simulator(ts, 123);
  const sim::Trace trace = simulator.run(300);
  for (std::size_t f = 0; f < trace.size(); ++f) {
    const std::uint64_t diff = (trace.value(wptr, f) - trace.value(rptr, f)) & 0xF;
    ASSERT_EQ(diff, trace.value(count, f)) << "frame " << f;
    ASSERT_LE(trace.value(count, f), 8u);
  }
}

}  // namespace
}  // namespace genfv::designs
