/// Model-checking engine tests: unroller mechanics, BMC counterexample
/// depth/consistency, k-induction verdicts with and without lemmas, joint
/// (mutual) induction, simple-path constraints, budgets.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "mc/bmc.hpp"
#include "sat/solver.hpp"
#include "mc/kinduction.hpp"
#include "sim/random_sim.hpp"

namespace genfv::mc {
namespace {

using ir::NodeRef;

/// Free-running counter of `width` bits.
ir::TransitionSystem free_counter(unsigned width) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef c = ts.add_state("c", width);
  ts.set_init(c, nm.mk_const(0, width));
  ts.set_next(c, nm.mk_add(c, nm.mk_const(1, width)));
  return ts;
}

/// The paper's sync_counters, parameterized width.
ir::TransitionSystem sync_counters(unsigned width) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef c1 = ts.add_state("count1", width);
  const NodeRef c2 = ts.add_state("count2", width);
  ts.set_init(c1, nm.mk_const(0, width));
  ts.set_init(c2, nm.mk_const(0, width));
  ts.set_next(c1, nm.mk_add(c1, nm.mk_const(1, width)));
  ts.set_next(c2, nm.mk_add(c2, nm.mk_const(1, width)));
  return ts;
}

TEST(Unroller, FrameCountAndInit) {
  auto ts = free_counter(4);
  sat::Solver solver;
  Unroller unroller(ts, solver);
  EXPECT_EQ(unroller.frame_count(), 1u);
  unroller.extend_to(3);
  EXPECT_EQ(unroller.frame_count(), 4u);
  unroller.assert_init();
  const NodeRef c = ts.lookup("c");
  // With init asserted, the counter value at frame f is exactly f.
  ASSERT_EQ(solver.solve(), sat::LBool::True);
  for (std::size_t f = 0; f <= 3; ++f) {
    EXPECT_EQ(unroller.model_value(c, f), f);
  }
}

TEST(Unroller, WithoutInitFrameZeroIsFree) {
  auto ts = free_counter(4);
  sat::Solver solver;
  Unroller unroller(ts, solver);
  unroller.extend_to(1);
  const NodeRef c = ts.lookup("c");
  auto& nm = ts.nm();
  // c@0 == 9 must be satisfiable without init.
  const sat::Lit is9 = unroller.lit_at(nm.mk_eq(c, nm.mk_const(9, 4)), 0);
  ASSERT_EQ(solver.solve({is9}), sat::LBool::True);
  EXPECT_EQ(unroller.model_value(c, 0), 9u);
  EXPECT_EQ(unroller.model_value(c, 1), 10u);  // transition still enforced
}

TEST(Unroller, StatesDifferConstraint) {
  // Hold register: frames can only be equal; forcing distinctness is UNSAT.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef r = ts.add_state("r", 4);
  ts.set_init(r, nm.mk_const(7, 4));
  ts.set_next(r, r);
  sat::Solver solver;
  Unroller unroller(ts, solver);
  unroller.extend_to(1);
  unroller.assert_states_differ(0, 1);
  EXPECT_EQ(solver.solve(), sat::LBool::False);
}

TEST(Bmc, FindsShallowBugAtExactDepth) {
  auto ts = free_counter(6);
  auto& nm = ts.nm();
  const NodeRef c = ts.lookup("c");
  BmcEngine bmc(ts, {.max_depth = 32});
  const BmcResult result = bmc.check(nm.mk_ne(c, nm.mk_const(13, 6)));
  EXPECT_EQ(result.verdict, Verdict::Falsified);
  EXPECT_EQ(result.depth, 13u);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_EQ(result.cex->size(), 14u);
  EXPECT_TRUE(result.cex->is_consistent());
  EXPECT_EQ(result.cex->value(c, 13), 13u);
}

TEST(Bmc, BoundedOnlyNeverProves) {
  auto ts = free_counter(8);
  auto& nm = ts.nm();
  // True invariant: BMC can only report Unknown within its bound.
  BmcEngine bmc(ts, {.max_depth = 10});
  const BmcResult result =
      bmc.check(nm.mk_ule(ts.lookup("c"), nm.mk_ones(8)));
  EXPECT_EQ(result.verdict, Verdict::Unknown);
  EXPECT_EQ(result.depth, 10u);
}

TEST(Bmc, RespectsEnvironmentConstraints) {
  // rst constrained low: the reset-triggered bug is unreachable.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef rst = ts.add_input("rst", 1);
  const NodeRef flag = ts.add_state("flag", 1);
  ts.set_init(flag, nm.mk_const(0, 1));
  ts.set_next(flag, nm.mk_or(flag, rst));
  ts.add_constraint(nm.mk_eq(rst, nm.mk_const(0, 1)));
  BmcEngine bmc(ts, {.max_depth = 8});
  EXPECT_EQ(bmc.check(nm.mk_not(flag)).verdict, Verdict::Unknown);
}

TEST(KInduction, ProvesInductiveInvariantAtKOne) {
  auto ts = sync_counters(16);
  auto& nm = ts.nm();
  const NodeRef helper = nm.mk_eq(ts.lookup("count1"), ts.lookup("count2"));
  KInductionEngine engine(ts, {.max_k = 4});
  const InductionResult result = engine.prove(helper);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_EQ(result.k, 1u);
}

TEST(KInduction, PaperTargetNeedsTheLemma) {
  auto ts = sync_counters(16);
  auto& nm = ts.nm();
  const NodeRef c1 = ts.lookup("count1");
  const NodeRef c2 = ts.lookup("count2");
  const NodeRef target = nm.mk_implies(nm.mk_redand(c1), nm.mk_redand(c2));
  const NodeRef helper = nm.mk_eq(c1, c2);

  KInductionEngine without(ts, {.max_k = 6});
  const InductionResult r1 = without.prove(target);
  EXPECT_EQ(r1.verdict, Verdict::Unknown);
  ASSERT_TRUE(r1.step_cex.has_value());
  // The step CEX satisfies the property on all frames but the last, and
  // violates it at the last — and is NOT a real execution from reset.
  const auto& cex = *r1.step_cex;
  EXPECT_EQ(cex.value(target, cex.size() - 1), 0u);
  for (std::size_t f = 0; f + 1 < cex.size(); ++f) {
    EXPECT_EQ(cex.value(target, f), 1u);
  }
  EXPECT_TRUE(cex.is_consistent());  // it follows the transition relation
  EXPECT_NE(cex.value(c1, 0), cex.value(c2, 0));  // unreachable start

  KInductionEngine with(ts, {.max_k = 6, .lemmas = {helper}});
  const InductionResult r2 = with.prove(target);
  EXPECT_EQ(r2.verdict, Verdict::Proven);
  EXPECT_EQ(r2.k, 1u);
}

TEST(KInduction, FalsifiedPropertyYieldsRealBaseCex) {
  auto ts = free_counter(5);
  auto& nm = ts.nm();
  const NodeRef c = ts.lookup("c");
  KInductionEngine engine(ts, {.max_k = 16});
  const InductionResult result = engine.prove(nm.mk_ne(c, nm.mk_const(6, 5)));
  EXPECT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.base_cex.has_value());
  EXPECT_TRUE(result.base_cex->is_consistent());
  EXPECT_EQ(result.base_cex->value(c, 0), 0u);  // starts at reset
  EXPECT_EQ(result.base_cex->value(c, result.base_cex->size() - 1), 6u);
}

TEST(KInduction, HigherKClosesWithoutLemma) {
  // Mod-6 phase counter in 4 bits: garbage phases 6..15 drain back into the
  // legal range within 10 steps, so the audit property is (k=11)-inductive
  // but not 1-inductive. This pins the k-induction depth mechanics.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef phase = ts.add_state("phase", 4);
  const NodeRef bad = ts.add_state("bad", 1);
  ts.set_init(phase, nm.mk_const(0, 4));
  ts.set_init(bad, nm.mk_const(0, 1));
  ts.set_next(phase, nm.mk_ite(nm.mk_eq(phase, nm.mk_const(5, 4)), nm.mk_const(0, 4),
                               nm.mk_add(phase, nm.mk_const(1, 4))));
  // bad latches when phase leaves the legal range right as it wraps to 0.
  ts.set_next(bad, nm.mk_or(bad, nm.mk_ugt(phase, nm.mk_const(14, 4))));
  const NodeRef target = nm.mk_not(bad);

  KInductionEngine small(ts, {.max_k = 4});
  EXPECT_EQ(small.prove(target).verdict, Verdict::Unknown);

  KInductionEngine big(ts, {.max_k = 16});
  const InductionResult r = big.prove(target);
  EXPECT_EQ(r.verdict, Verdict::Proven);
  EXPECT_GT(r.k, 4u);

  // A range lemma collapses the required depth to 1.
  KInductionEngine with_lemma(
      ts, {.max_k = 4, .lemmas = {nm.mk_ule(phase, nm.mk_const(5, 4))}});
  const InductionResult rl = with_lemma.prove(target);
  EXPECT_EQ(rl.verdict, Verdict::Proven);
  EXPECT_EQ(rl.k, 1u);
}

TEST(KInduction, JointInductionProvesMutuallyDependentSet) {
  // acc pair + sum pair: sum equality is only inductive given acc equality.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef din = ts.add_input("din", 8);
  const NodeRef acc_a = ts.add_state("acc_a", 8);
  const NodeRef acc_b = ts.add_state("acc_b", 8);
  const NodeRef sum_a = ts.add_state("sum_a", 8);
  const NodeRef sum_b = ts.add_state("sum_b", 8);
  for (const NodeRef s : {acc_a, acc_b, sum_a, sum_b}) ts.set_init(s, nm.mk_const(0, 8));
  ts.set_next(acc_a, nm.mk_add(acc_a, din));
  ts.set_next(acc_b, nm.mk_add(acc_b, din));
  ts.set_next(sum_a, nm.mk_add(sum_a, acc_a));
  ts.set_next(sum_b, nm.mk_add(sum_b, acc_b));

  const NodeRef sum_eq = nm.mk_eq(sum_a, sum_b);
  const NodeRef acc_eq = nm.mk_eq(acc_a, acc_b);

  KInductionEngine solo(ts, {.max_k = 1});
  EXPECT_EQ(solo.prove(sum_eq).verdict, Verdict::Unknown);

  KInductionEngine joint(ts, {.max_k = 2});
  EXPECT_EQ(joint.prove_all({sum_eq, acc_eq}).verdict, Verdict::Proven);
}

TEST(KInduction, SimplePathClosesLassoFreeProperty) {
  // Incrementally-maintained 2-bit Gray shadow with an input-gated audit: a
  // corrupted gray register persists forever and the audit can be deferred
  // arbitrarily (chk held low), so the property is not k-inductive for ANY
  // k. The state space is tiny though, so pairwise simple-path constraints
  // force the step case UNSAT once paths must exceed the garbage orbit.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef chk = ts.add_input("chk", 1);
  const NodeRef bin = ts.add_state("bin", 2);
  const NodeRef gray = ts.add_state("gray", 2);
  const NodeRef err = ts.add_state("err", 1);
  ts.set_init(bin, nm.mk_const(0, 2));
  ts.set_init(gray, nm.mk_const(0, 2));
  ts.set_init(err, nm.mk_const(0, 1));
  const NodeRef one = nm.mk_const(1, 2);
  const NodeRef flip = nm.mk_xor(bin, nm.mk_add(bin, one));
  const NodeRef delta = nm.mk_xor(flip, nm.mk_lshr(flip, one));
  ts.set_next(bin, nm.mk_add(bin, one));
  ts.set_next(gray, nm.mk_xor(gray, delta));
  const NodeRef enc = nm.mk_xor(bin, nm.mk_lshr(bin, one));
  ts.set_next(err, nm.mk_or(err, nm.mk_and(chk, nm.mk_ne(gray, enc))));
  const NodeRef target = nm.mk_not(err);

  KInductionEngine plain(ts, {.max_k = 12, .simple_path = false});
  EXPECT_EQ(plain.prove(target).verdict, Verdict::Unknown);

  KInductionEngine pathy(ts, {.max_k = 12, .simple_path = true});
  EXPECT_EQ(pathy.prove(target).verdict, Verdict::Proven);
}

TEST(KInduction, ConflictBudgetYieldsUnknown) {
  auto ts = sync_counters(32);
  auto& nm = ts.nm();
  const NodeRef target = nm.mk_implies(nm.mk_redand(ts.lookup("count1")),
                                       nm.mk_redand(ts.lookup("count2")));
  KInductionEngine engine(ts, {.max_k = 64, .conflict_budget = 1});
  const InductionResult result = engine.prove(target);
  EXPECT_EQ(result.verdict, Verdict::Unknown);
}

TEST(KInduction, ProvenPropertiesSurviveLongRandomSimulation) {
  // Cross-check engine soundness against the reference simulator.
  auto ts = sync_counters(12);
  auto& nm = ts.nm();
  const NodeRef helper = nm.mk_eq(ts.lookup("count1"), ts.lookup("count2"));
  KInductionEngine engine(ts, {.max_k = 4});
  ASSERT_EQ(engine.prove(helper).verdict, Verdict::Proven);
  sim::RandomSimulator simulator(ts, 77);
  EXPECT_FALSE(simulator.falsify(helper, 500, 4).has_value());
}

TEST(Result, SummaryMentionsVerdictAndDepth) {
  InductionResult r;
  r.verdict = Verdict::Proven;
  r.k = 3;
  const std::string s = r.summary();
  EXPECT_NE(s.find("proven"), std::string::npos);
  EXPECT_NE(s.find("k=3"), std::string::npos);
}

}  // namespace
}  // namespace genfv::mc
