/// Bit-blaster tests. The central property: for any expression DAG and any
/// leaf valuation, the SAT encoding forced to that valuation produces
/// exactly the reference simulator's value — checked over random DAGs
/// (TEST_P sweep) and exhaustively for every operator at small widths.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "bitblast/bitblaster.hpp"
#include "sat/solver.hpp"
#include "sim/interpreter.hpp"
#include "util/rng.hpp"

namespace genfv::bitblast {
namespace {

using ir::NodeRef;

/// Bind a leaf to fresh solver variables and produce assumptions fixing it
/// to `value`.
void bind_leaf(BitBlaster& blaster, BlastCache& cache, NodeRef leaf, std::uint64_t value,
               std::vector<sat::Lit>& assumptions) {
  const Bits bits = blaster.fresh_vector(leaf->width());
  for (unsigned i = 0; i < leaf->width(); ++i) {
    assumptions.push_back(bits[i] ^ !((value >> i) & 1ULL));
  }
  cache.emplace(leaf, bits);
}

/// Blast `expr`, force the given leaf values, solve, and read back the
/// expression's model value.
std::uint64_t blast_and_eval(NodeRef expr, const std::vector<std::pair<NodeRef, std::uint64_t>>& leaves) {
  sat::Solver solver;
  BitBlaster blaster(solver);
  BlastCache cache;
  std::vector<sat::Lit> assumptions;
  for (const auto& [leaf, value] : leaves) {
    bind_leaf(blaster, cache, leaf, value, assumptions);
  }
  const Bits bits = blaster.blast(expr, cache);
  EXPECT_EQ(solver.solve(assumptions), sat::LBool::True);
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (solver.model_value(bits[i]) == sat::LBool::True) out |= 1ULL << i;
  }
  return out;
}

TEST(BitBlast, ConstantsNeedNoLeaves) {
  ir::NodeManager nm;
  EXPECT_EQ(blast_and_eval(nm.mk_const(0xAB, 8), {}), 0xABu);
  EXPECT_EQ(blast_and_eval(nm.mk_true(), {}), 1u);
}

TEST(BitBlast, UnboundLeafThrows) {
  ir::NodeManager nm;
  const NodeRef x = nm.mk_input("x", 4);
  sat::Solver solver;
  BitBlaster blaster(solver);
  BlastCache cache;
  EXPECT_THROW(blaster.blast(x, cache), UsageError);
}

/// Exhaustive per-operator check at width 3: all 64 operand pairs.
class OpExhaustive : public ::testing::TestWithParam<int> {};

TEST_P(OpExhaustive, MatchesSimulatorOnAllWidth3Pairs) {
  const int op_index = GetParam();
  ir::NodeManager nm;
  const NodeRef a = nm.mk_input("a", 3);
  const NodeRef b = nm.mk_input("b", 3);
  const NodeRef exprs[] = {
      nm.mk_add(a, b),  nm.mk_sub(a, b),  nm.mk_mul(a, b),  nm.mk_and(a, b),
      nm.mk_or(a, b),   nm.mk_xor(a, b),  nm.mk_eq(a, b),   nm.mk_ult(a, b),
      nm.mk_ule(a, b),  nm.mk_slt(a, b),  nm.mk_sle(a, b),  nm.mk_shl(a, b),
      nm.mk_lshr(a, b), nm.mk_ashr(a, b), nm.mk_udiv(a, b), nm.mk_urem(a, b),
      nm.mk_concat(a, b),
  };
  const NodeRef expr = exprs[op_index];
  for (std::uint64_t va = 0; va < 8; ++va) {
    for (std::uint64_t vb = 0; vb < 8; ++vb) {
      const sim::Assignment env{{a, va}, {b, vb}};
      const std::uint64_t expected = sim::evaluate(expr, env);
      const std::uint64_t got = blast_and_eval(expr, {{a, va}, {b, vb}});
      ASSERT_EQ(got, expected) << ir::op_name(expr->op()) << " a=" << va << " b=" << vb;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllOps, OpExhaustive, ::testing::Range(0, 17));

TEST(BitBlast, UnaryAndStructuralOps) {
  ir::NodeManager nm;
  const NodeRef a = nm.mk_input("a", 5);
  const NodeRef c = nm.mk_input("c", 1);
  for (std::uint64_t va = 0; va < 32; ++va) {
    const sim::Assignment env{{a, va}};
    EXPECT_EQ(blast_and_eval(nm.mk_not(a), {{a, va}}), sim::evaluate(nm.mk_not(a), env));
    EXPECT_EQ(blast_and_eval(nm.mk_neg(a), {{a, va}}), sim::evaluate(nm.mk_neg(a), env));
    EXPECT_EQ(blast_and_eval(nm.mk_redand(a), {{a, va}}),
              sim::evaluate(nm.mk_redand(a), env));
    EXPECT_EQ(blast_and_eval(nm.mk_redor(a), {{a, va}}),
              sim::evaluate(nm.mk_redor(a), env));
    EXPECT_EQ(blast_and_eval(nm.mk_redxor(a), {{a, va}}),
              sim::evaluate(nm.mk_redxor(a), env));
    EXPECT_EQ(blast_and_eval(nm.mk_extract(a, 3, 1), {{a, va}}), (va >> 1) & 0x7);
    EXPECT_EQ(blast_and_eval(nm.mk_zext(a, 9), {{a, va}}), va);
    EXPECT_EQ(blast_and_eval(nm.mk_sext(a, 9), {{a, va}}),
              sim::evaluate(nm.mk_sext(a, 9), env));
  }
  for (std::uint64_t vc = 0; vc < 2; ++vc) {
    const NodeRef ite = nm.mk_ite(c, nm.mk_const(0x15, 5), nm.mk_const(0x0A, 5));
    EXPECT_EQ(blast_and_eval(ite, {{c, vc}}), vc != 0 ? 0x15u : 0x0Au);
  }
}

/// Random DAG generator for the blast-vs-simulate property.
class RandomDag {
 public:
  RandomDag(ir::NodeManager& nm, util::Xoshiro256& rng) : nm_(nm), rng_(rng) {}

  NodeRef leaf(unsigned width, std::vector<NodeRef>& leaves) {
    const NodeRef n = nm_.mk_input("l" + std::to_string(counter_++), width);
    leaves.push_back(n);
    return n;
  }

  NodeRef grow(int depth, unsigned width, std::vector<NodeRef>& leaves) {
    if (depth == 0 || rng_.chance(0.15)) {
      if (rng_.chance(0.25)) return nm_.mk_const(rng_.bits(width), width);
      return leaf(width, leaves);
    }
    switch (rng_.below(14)) {
      case 0: return nm_.mk_add(grow(depth - 1, width, leaves), grow(depth - 1, width, leaves));
      case 1: return nm_.mk_sub(grow(depth - 1, width, leaves), grow(depth - 1, width, leaves));
      case 2: return nm_.mk_and(grow(depth - 1, width, leaves), grow(depth - 1, width, leaves));
      case 3: return nm_.mk_or(grow(depth - 1, width, leaves), grow(depth - 1, width, leaves));
      case 4: return nm_.mk_xor(grow(depth - 1, width, leaves), grow(depth - 1, width, leaves));
      case 5: return nm_.mk_not(grow(depth - 1, width, leaves));
      case 6: return nm_.mk_neg(grow(depth - 1, width, leaves));
      case 7: return nm_.mk_ite(grow(depth - 1, 1, leaves), grow(depth - 1, width, leaves),
                                grow(depth - 1, width, leaves));
      case 8: return nm_.mk_mul(grow(depth - 1, width, leaves), grow(depth - 1, width, leaves));
      case 9: return nm_.mk_shl(grow(depth - 1, width, leaves), grow(depth - 1, width, leaves));
      case 10: return nm_.mk_lshr(grow(depth - 1, width, leaves), grow(depth - 1, width, leaves));
      case 11: {
        // Predicates re-widened so the recursion stays width-consistent.
        const NodeRef p = nm_.mk_ult(grow(depth - 1, width, leaves),
                                     grow(depth - 1, width, leaves));
        return nm_.mk_zext(p, width);
      }
      case 12: {
        if (width >= 2) {
          const unsigned lo_w = 1 + static_cast<unsigned>(rng_.below(width - 1));
          return nm_.mk_concat(grow(depth - 1, width - lo_w, leaves),
                               grow(depth - 1, lo_w, leaves));
        }
        return grow(depth - 1, width, leaves);
      }
      default: {
        const unsigned wider = width + static_cast<unsigned>(rng_.below(4));
        if (wider <= 64 && wider > width) {
          return nm_.mk_extract(grow(depth - 1, wider, leaves), width - 1, 0);
        }
        return grow(depth - 1, width, leaves);
      }
    }
  }

 private:
  ir::NodeManager& nm_;
  util::Xoshiro256& rng_;
  int counter_ = 0;
};

class BlastVsSimulate : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BlastVsSimulate, RandomDagsAgreeWithSimulator) {
  util::Xoshiro256 rng(GetParam());
  for (int instance = 0; instance < 25; ++instance) {
    ir::NodeManager nm;
    RandomDag gen(nm, rng);
    std::vector<NodeRef> leaves;
    const unsigned width = 1 + static_cast<unsigned>(rng.below(16));
    const NodeRef expr = gen.grow(4, width, leaves);

    std::vector<std::pair<NodeRef, std::uint64_t>> bound;
    sim::Assignment env;
    for (const NodeRef leaf : leaves) {
      const std::uint64_t v = rng.bits(leaf->width());
      bound.emplace_back(leaf, v);
      env[leaf] = v;
    }
    const std::uint64_t expected = sim::evaluate(expr, env);
    ASSERT_EQ(blast_and_eval(expr, bound), expected) << "instance " << instance;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlastVsSimulate,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(BitBlast, AssertEqualForcesEquality) {
  ir::NodeManager nm;
  sat::Solver solver;
  BitBlaster blaster(solver);
  const Bits a = blaster.fresh_vector(6);
  const Bits b = blaster.fresh_vector(6);
  blaster.assert_equal(a, b);
  ASSERT_EQ(solver.solve(), sat::LBool::True);
  for (unsigned i = 0; i < 6; ++i) {
    EXPECT_EQ(solver.model_value(a[i]), solver.model_value(b[i]));
  }
  // Forcing a difference must be UNSAT.
  EXPECT_EQ(solver.solve({a[2], ~b[2]}), sat::LBool::False);
}

TEST(BitBlast, GateHelpersShortCircuitOnConstants) {
  ir::NodeManager nm;
  sat::Solver solver;
  BitBlaster blaster(solver);
  const sat::Lit t = blaster.lit_true();
  const sat::Lit f = blaster.lit_false();
  const sat::Lit x = sat::mk_lit(solver.new_var());
  EXPECT_EQ(blaster.gate_and(t, x), x);
  EXPECT_EQ(blaster.gate_and(f, x), f);
  EXPECT_EQ(blaster.gate_or(t, x), t);
  EXPECT_EQ(blaster.gate_xor(f, x), x);
  EXPECT_EQ(blaster.gate_xor(t, x), ~x);
  EXPECT_EQ(blaster.gate_mux(t, x, f), x);
  EXPECT_EQ(blaster.gate_and(x, x), x);
  EXPECT_EQ(blaster.gate_and(x, ~x), f);
}

}  // namespace
}  // namespace genfv::bitblast
