/// Cross-engine property tests over randomly generated transition systems:
/// the strongest soundness evidence in the suite. For each random design we
/// check agreement between the SAT-based engines and the reference
/// simulator:
///   * every BMC counterexample replays concretely and violates the property
///     exactly at the reported frame;
///   * every k-induction "proven" verdict survives long random simulation;
///   * every k-induction base-case counterexample is a real reset execution;
///   * the unrolled SAT encoding of a whole random system agrees with the
///     simulator frame by frame when inputs are pinned.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "mc/bmc.hpp"
#include "mc/kinduction.hpp"
#include "mc/pdr/pdr.hpp"
#include "sat/solver.hpp"
#include "sim/random_sim.hpp"
#include "util/rng.hpp"

namespace genfv {
namespace {

using ir::NodeRef;

/// Random synchronous design generator: a few registers with random widths,
/// random update networks over registers/inputs/constants, constant inits.
struct RandomSystem {
  ir::TransitionSystem ts;
  std::vector<NodeRef> pool;  // expression pool for property construction

  explicit RandomSystem(util::Xoshiro256& rng) {
    auto& nm = ts.nm();
    const unsigned width = 2 + static_cast<unsigned>(rng.below(6));  // 2..7 bits
    const std::size_t num_inputs = 1 + rng.below(2);
    const std::size_t num_states = 2 + rng.below(3);

    std::vector<NodeRef> leaves;
    for (std::size_t i = 0; i < num_inputs; ++i) {
      leaves.push_back(ts.add_input("in" + std::to_string(i), width));
    }
    std::vector<NodeRef> states;
    for (std::size_t i = 0; i < num_states; ++i) {
      const NodeRef s = ts.add_state("r" + std::to_string(i), width);
      ts.set_init(s, nm.mk_const(rng.bits(width), width));
      states.push_back(s);
      leaves.push_back(s);
    }

    auto random_leaf = [&]() -> NodeRef {
      if (rng.chance(0.2)) return nm.mk_const(rng.bits(width), width);
      return leaves[rng.index(leaves.size())];
    };
    auto random_expr = [&](int depth) -> NodeRef {
      NodeRef acc = random_leaf();
      for (int d = 0; d < depth; ++d) {
        const NodeRef other = random_leaf();
        switch (rng.below(7)) {
          case 0: acc = nm.mk_add(acc, other); break;
          case 1: acc = nm.mk_sub(acc, other); break;
          case 2: acc = nm.mk_and(acc, other); break;
          case 3: acc = nm.mk_or(acc, other); break;
          case 4: acc = nm.mk_xor(acc, other); break;
          case 5: acc = nm.mk_ite(nm.mk_bool(random_leaf()), acc, other); break;
          default: acc = nm.mk_not(acc); break;
        }
      }
      return acc;
    };

    for (const NodeRef s : states) {
      ts.set_next(s, random_expr(2 + static_cast<int>(rng.below(3))));
      pool.push_back(s);
    }
    pool.push_back(random_expr(2));
  }

  /// A width-1 property over the pool (may be true or false of the design).
  NodeRef random_property(util::Xoshiro256& rng) {
    auto& nm = ts.nm();
    const NodeRef a = pool[rng.index(pool.size())];
    const NodeRef b = rng.chance(0.5) ? pool[rng.index(pool.size())]
                                      : nm.mk_const(rng.bits(a->width()), a->width());
    switch (rng.below(4)) {
      case 0: return nm.mk_ne(a, nm.mk_resize(b, a->width()));
      case 1: return nm.mk_ule(a, nm.mk_resize(b, a->width()));
      case 2: return nm.mk_implies(nm.mk_redand(a), nm.mk_redor(a));
      default: return nm.mk_not(nm.mk_eq(a, nm.mk_resize(b, a->width())));
    }
  }
};

class RandomSystems : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSystems, BmcCexesReplayOnTheSimulator) {
  util::Xoshiro256 rng(GetParam());
  for (int instance = 0; instance < 12; ++instance) {
    RandomSystem sys(rng);
    const NodeRef prop = sys.random_property(rng);
    mc::BmcEngine bmc(sys.ts, {.max_depth = 12});
    const mc::BmcResult result = bmc.check(prop);
    if (result.verdict != mc::Verdict::Falsified) continue;
    ASSERT_TRUE(result.cex.has_value());
    const sim::Trace& cex = *result.cex;
    // The trace is a genuine execution...
    ASSERT_TRUE(cex.is_consistent()) << "instance " << instance;
    // ...starting from the initial states...
    for (const auto& s : sys.ts.states()) {
      if (s.init != nullptr) {
        ASSERT_EQ(cex.value(s.var, 0), s.init->value());
      }
    }
    // ...violating the property exactly at the reported depth, not before.
    ASSERT_EQ(cex.value(prop, cex.size() - 1), 0u);
    for (std::size_t f = 0; f + 1 < cex.size(); ++f) {
      ASSERT_EQ(cex.value(prop, f), 1u) << "BMC must return the SHORTEST cex";
    }
  }
}

TEST_P(RandomSystems, InductionProofsSurviveRandomSimulation) {
  util::Xoshiro256 rng(GetParam() ^ 0xABCDEF);
  int proven_count = 0;
  for (int instance = 0; instance < 12; ++instance) {
    RandomSystem sys(rng);
    const NodeRef prop = sys.random_property(rng);
    mc::KInductionEngine engine(sys.ts, {.max_k = 6, .conflict_budget = 50'000});
    const mc::InductionResult result = engine.prove(prop);
    if (result.verdict == mc::Verdict::Proven) {
      ++proven_count;
      sim::RandomSimulator simulator(sys.ts, rng.next());
      const auto witness = simulator.falsify(prop, 200, 4);
      ASSERT_FALSE(witness.has_value())
          << "engine claimed 'proven' but simulation falsified (instance "
          << instance << ")";
    } else if (result.verdict == mc::Verdict::Falsified) {
      ASSERT_TRUE(result.base_cex.has_value());
      ASSERT_TRUE(result.base_cex->is_consistent());
      ASSERT_EQ(result.base_cex->value(prop, result.base_cex->size() - 1), 0u);
    }
  }
  // The sweep must actually exercise the 'proven' path.
  EXPECT_GT(proven_count, 0);
}

TEST_P(RandomSystems, BmcAndInductionAgreeOnFalsified) {
  // Any property k-induction falsifies, BMC must falsify at the same depth,
  // and vice versa (both report shortest counterexamples).
  util::Xoshiro256 rng(GetParam() ^ 0x5151);
  for (int instance = 0; instance < 10; ++instance) {
    RandomSystem sys(rng);
    const NodeRef prop = sys.random_property(rng);
    mc::BmcEngine bmc(sys.ts, {.max_depth = 10});
    mc::KInductionEngine kind(sys.ts, {.max_k = 11, .conflict_budget = 50'000});
    const auto r_bmc = bmc.check(prop);
    const auto r_kind = kind.prove(prop);
    if (r_bmc.verdict == mc::Verdict::Falsified &&
        r_kind.verdict == mc::Verdict::Falsified) {
      ASSERT_EQ(r_bmc.cex->size(), r_kind.base_cex->size()) << "instance " << instance;
    }
    if (r_kind.verdict == mc::Verdict::Proven) {
      ASSERT_NE(r_bmc.verdict, mc::Verdict::Falsified) << "instance " << instance;
    }
    if (r_bmc.verdict == mc::Verdict::Falsified && r_bmc.depth <= 10) {
      ASSERT_NE(r_kind.verdict, mc::Verdict::Proven) << "instance " << instance;
    }
  }
}

TEST_P(RandomSystems, PdrAgreesWithBmcAndSimulation) {
  // Unlike BMC/k-induction, PDR concludes Proven on many random designs, so
  // this sweep exercises both verdicts: Proven must survive BMC and random
  // simulation, Falsified must replay concretely and be no shorter than
  // BMC's (shortest) counterexample.
  util::Xoshiro256 rng(GetParam() ^ 0x9D12);
  int proven = 0;
  int falsified = 0;
  for (int instance = 0; instance < 10; ++instance) {
    RandomSystem sys(rng);
    const NodeRef prop = sys.random_property(rng);
    mc::pdr::PdrEngine pdr(sys.ts, {.max_frames = 12,
                                    .conflict_budget = 50'000,
                                    .max_obligations = 5000});
    const mc::pdr::PdrResult r = pdr.prove(prop);
    mc::BmcEngine bmc(sys.ts, {.max_depth = 14});
    const mc::BmcResult r_bmc = bmc.check(prop);

    if (r.verdict == mc::Verdict::Proven) {
      ++proven;
      ASSERT_NE(r_bmc.verdict, mc::Verdict::Falsified) << "instance " << instance;
      sim::RandomSimulator simulator(sys.ts, rng.next());
      ASSERT_FALSE(simulator.falsify(prop, 200, 4).has_value())
          << "PDR claimed 'proven' but simulation falsified (instance " << instance
          << ")";
    } else if (r.verdict == mc::Verdict::Falsified) {
      ++falsified;
      ASSERT_TRUE(r.cex.has_value());
      ASSERT_TRUE(r.cex->is_consistent()) << "instance " << instance;
      ASSERT_EQ(r.cex->value(prop, r.cex->size() - 1), 0u) << "instance " << instance;
      // ... and the replay starts from the initial states.
      for (const auto& s : sys.ts.states()) {
        if (s.init != nullptr) {
          ASSERT_EQ(r.cex->value(s.var, 0), s.init->value()) << "instance " << instance;
        }
      }
      // PDR counterexamples need not be shortest (obligation chains can
      // outgrow the frontier); when BMC's bound covers one, it must agree
      // with a no-longer counterexample.
      if (r.cex->size() <= 15) {
        ASSERT_EQ(r_bmc.verdict, mc::Verdict::Falsified) << "instance " << instance;
        ASSERT_LE(r_bmc.cex->size(), r.cex->size()) << "instance " << instance;
      }
    }
  }
  EXPECT_GT(proven + falsified, 0);
}

TEST_P(RandomSystems, UnrolledEncodingMatchesSimulatorFrameByFrame) {
  // Pin all inputs of all frames to random values via assumptions; the SAT
  // model of every state bit must equal the simulator's trajectory.
  util::Xoshiro256 rng(GetParam() ^ 0x777);
  for (int instance = 0; instance < 8; ++instance) {
    RandomSystem sys(rng);
    constexpr std::size_t kFrames = 6;

    sat::Solver solver;
    mc::Unroller unroller(sys.ts, solver);
    unroller.assert_init();
    unroller.extend_to(kFrames);

    // Simulator reference run with concrete inputs.
    sim::Assignment state;
    for (const auto& s : sys.ts.states()) state[s.var] = s.init->value();
    std::vector<sim::Assignment> frames;
    std::vector<sat::Lit> assumptions;
    for (std::size_t f = 0; f <= kFrames; ++f) {
      sim::Assignment env = state;
      for (const NodeRef in : sys.ts.inputs()) {
        const std::uint64_t v = rng.bits(in->width());
        env[in] = v;
        const auto& bits = unroller.bits_at(in, f);
        for (unsigned i = 0; i < in->width(); ++i) {
          assumptions.push_back(bits[i] ^ !((v >> i) & 1ULL));
        }
      }
      frames.push_back(env);
      state = sim::step(sys.ts, env);
    }

    ASSERT_EQ(solver.solve(assumptions), sat::LBool::True);
    for (std::size_t f = 0; f <= kFrames; ++f) {
      for (const auto& s : sys.ts.states()) {
        ASSERT_EQ(unroller.model_value(s.var, f), frames[f].at(s.var))
            << "instance " << instance << " state " << s.var->name() << " frame " << f;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSystems,
                         ::testing::Values(11, 23, 37, 59, 71, 97));

}  // namespace
}  // namespace genfv
