/// Unit tests for each invariant-mining pass, run against purpose-built
/// transition systems where the expected findings (and non-findings) are
/// known exactly.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "designs/design.hpp"
#include "genai/mining/miner.hpp"
#include "sim/random_sim.hpp"

namespace genfv::genai {
namespace {

using ir::NodeRef;

std::vector<sim::Assignment> sample(const ir::TransitionSystem& ts, std::uint64_t seed,
                                    std::size_t steps = 48, std::size_t restarts = 6) {
  sim::RandomSimulator simulator(ts, seed);
  return simulator.sample_states(steps, restarts);
}

std::vector<CandidateInvariant> run_miner(const InvariantMiner& miner,
                                          const ir::TransitionSystem& ts,
                                          const std::vector<sim::Assignment>& samples) {
  util::Xoshiro256 rng(1);
  MiningContext ctx{ts, samples, nullptr, rng};
  std::vector<CandidateInvariant> out;
  miner.mine(ctx, out);
  return out;
}

bool any_sva_contains(const std::vector<CandidateInvariant>& cs, const std::string& text) {
  for (const auto& c : cs) {
    if (c.sva.find(text) != std::string::npos) return true;
  }
  return false;
}

TEST(ResetValueMiner, FindsFrozenRegistersOnly) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef frozen = ts.add_state("frozen", 8);
  const NodeRef moving = ts.add_state("moving", 8);
  ts.set_init(frozen, nm.mk_const(0x2A, 8));
  ts.set_next(frozen, frozen);
  ts.set_init(moving, nm.mk_const(0, 8));
  ts.set_next(moving, nm.mk_add(moving, nm.mk_const(1, 8)));
  const auto found = run_miner(ResetValueMiner{}, ts, sample(ts, 3));
  EXPECT_TRUE(any_sva_contains(found, "frozen == 8'h2a"));
  EXPECT_FALSE(any_sva_contains(found, "moving"));
}

TEST(EqualityMiner, StructuralPairGetsHighConfidence) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef a = ts.add_state("a", 8);
  const NodeRef b = ts.add_state("b", 8);
  const NodeRef c = ts.add_state("c", 4);  // width mismatch: never paired
  ts.set_init(a, nm.mk_const(0, 8));
  ts.set_init(b, nm.mk_const(0, 8));
  ts.set_init(c, nm.mk_const(0, 4));
  ts.set_next(a, nm.mk_add(a, nm.mk_const(1, 8)));
  ts.set_next(b, nm.mk_add(b, nm.mk_const(1, 8)));
  ts.set_next(c, c);
  const auto found = run_miner(EqualityMiner{}, ts, sample(ts, 5));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].sva, "(a == b)");
  EXPECT_GE(found[0].confidence, 0.9);  // structural evidence
}

TEST(EqualityMiner, RejectsPairsThatDivergeInSamples) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef a = ts.add_state("a", 8);
  const NodeRef b = ts.add_state("b", 8);
  ts.set_init(a, nm.mk_const(0, 8));
  ts.set_init(b, nm.mk_const(0, 8));
  ts.set_next(a, nm.mk_add(a, nm.mk_const(1, 8)));
  ts.set_next(b, nm.mk_add(b, nm.mk_const(2, 8)));
  EXPECT_TRUE(run_miner(EqualityMiner{}, ts, sample(ts, 5)).empty());
}

TEST(DifferenceMiner, ConstantOffsetPair) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef a = ts.add_state("lead", 8);
  const NodeRef b = ts.add_state("lag", 8);
  ts.set_init(a, nm.mk_const(5, 8));
  ts.set_init(b, nm.mk_const(0, 8));
  ts.set_next(a, nm.mk_add(a, nm.mk_const(1, 8)));
  ts.set_next(b, nm.mk_add(b, nm.mk_const(1, 8)));
  const auto found = run_miner(DifferenceMiner{}, ts, sample(ts, 7));
  EXPECT_TRUE(any_sva_contains(found, "(lead - lag) == 8'h5"));
}

TEST(DifferenceMiner, RegisterTripleFifoRelation) {
  // wptr - rptr == count, driven by free wr/rd inputs with guards.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef wr = ts.add_input("wr", 1);
  const NodeRef rd = ts.add_input("rd", 1);
  const NodeRef wptr = ts.add_state("wptr", 4);
  const NodeRef rptr = ts.add_state("rptr", 4);
  const NodeRef count = ts.add_state("count", 4);
  for (const NodeRef s : {wptr, rptr, count}) ts.set_init(s, nm.mk_const(0, 4));
  const NodeRef full = nm.mk_eq(nm.mk_sub(wptr, rptr), nm.mk_const(8, 4));
  const NodeRef empty = nm.mk_eq(wptr, rptr);
  const NodeRef do_wr = nm.mk_and(wr, nm.mk_not(full));
  const NodeRef do_rd = nm.mk_and(rd, nm.mk_not(empty));
  const NodeRef one = nm.mk_const(1, 4);
  const NodeRef zero = nm.mk_const(0, 4);
  ts.set_next(wptr, nm.mk_ite(do_wr, nm.mk_add(wptr, one), wptr));
  ts.set_next(rptr, nm.mk_ite(do_rd, nm.mk_add(rptr, one), rptr));
  ts.set_next(count, nm.mk_sub(nm.mk_add(count, nm.mk_ite(do_wr, one, zero)),
                               nm.mk_ite(do_rd, one, zero)));
  const auto found = run_miner(DifferenceMiner{}, ts, sample(ts, 11));
  EXPECT_TRUE(any_sva_contains(found, "(wptr - rptr) == count"));
}

TEST(BoundsMiner, PrefersStructuralConstantOverSampledMax) {
  // Mod-6 counter: the wrap compare names 5 even if sampling missed value 5.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef c = ts.add_state("phase", 4);
  ts.set_init(c, nm.mk_const(0, 4));
  ts.set_next(c, nm.mk_ite(nm.mk_eq(c, nm.mk_const(5, 4)), nm.mk_const(0, 4),
                           nm.mk_add(c, nm.mk_const(1, 4))));
  const auto found = run_miner(BoundsMiner{}, ts, sample(ts, 13));
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0].sva, "(phase <= 4'h5)");
  EXPECT_GE(found[0].confidence, 0.7);
}

TEST(BoundsMiner, SkipsFullRangeRegisters) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef c = ts.add_state("free", 3);
  ts.set_init(c, nm.mk_const(0, 3));
  ts.set_next(c, nm.mk_add(c, nm.mk_const(1, 3)));
  EXPECT_TRUE(run_miner(BoundsMiner{}, ts, sample(ts, 17)).empty());
}

TEST(OneHotMiner, RotatingTokenAndAtMostOne) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef en = ts.add_input("en", 1);
  const NodeRef token = ts.add_state("token", 4);
  const NodeRef gnt = ts.add_state("gnt", 4);
  ts.set_init(token, nm.mk_const(1, 4));
  ts.set_init(gnt, nm.mk_const(0, 4));
  // rotate left by one
  const NodeRef rotated =
      nm.mk_concat(nm.mk_extract(token, 2, 0), nm.mk_extract(token, 3, 3));
  ts.set_next(token, rotated);
  ts.set_next(gnt, nm.mk_ite(en, token, nm.mk_const(0, 4)));
  const auto found = run_miner(OneHotMiner{}, ts, sample(ts, 19));
  EXPECT_TRUE(any_sva_contains(found, "$onehot(token)"));
  EXPECT_TRUE(any_sva_contains(found, "$onehot0(gnt)"));
}

TEST(ImplicationMiner, FindsControlImplicationWithSupport) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef go = ts.add_input("go", 1);
  const NodeRef busy = ts.add_state("busy", 1);
  const NodeRef active = ts.add_state("active", 1);
  ts.set_init(busy, nm.mk_const(0, 1));
  ts.set_init(active, nm.mk_const(0, 1));
  // busy implies active: active is set whenever busy gets set, cleared after.
  ts.set_next(busy, go);
  ts.set_next(active, nm.mk_or(go, busy));
  const auto found = run_miner(ImplicationMiner{}, ts, sample(ts, 23));
  EXPECT_TRUE(any_sva_contains(found, "(busy |-> active)"));
  EXPECT_FALSE(any_sva_contains(found, "(active |-> busy)"));
}

TEST(XorLinearMiner, FindsParityRelationAndNothingSpurious) {
  // data (4b) + par: par == ^data maintained on writes.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef en = ts.add_input("en", 1);
  const NodeRef din = ts.add_input("din", 4);
  const NodeRef data = ts.add_state("data", 4);
  const NodeRef par = ts.add_state("par", 1);
  ts.set_init(data, nm.mk_const(0, 4));
  ts.set_init(par, nm.mk_const(0, 1));
  ts.set_next(data, nm.mk_ite(en, din, data));
  ts.set_next(par, nm.mk_ite(en, nm.mk_redxor(din), par));
  const auto found = run_miner(XorLinearMiner{}, ts, sample(ts, 29, 64, 8));
  ASSERT_FALSE(found.empty());
  // The parity relation mentions all four data bits and par, affine 0.
  bool parity_found = false;
  for (const auto& c : found) {
    if (c.sva.find("data[0]") != std::string::npos &&
        c.sva.find("data[3]") != std::string::npos &&
        c.sva.find("par") != std::string::npos &&
        c.sva.find("== 1'b0") != std::string::npos) {
      parity_found = true;
    }
  }
  EXPECT_TRUE(parity_found);
}

TEST(XorLinearMiner, NeedsEnoughSamples) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef s = ts.add_state("s", 4);
  ts.set_init(s, nm.mk_const(0, 4));
  ts.set_next(s, nm.mk_add(s, nm.mk_const(1, 4)));
  util::Xoshiro256 rng(1);
  std::vector<sim::Assignment> tiny = {{{s, 0}}, {{s, 1}}};
  MiningContext ctx{ts, tiny, nullptr, rng};
  std::vector<CandidateInvariant> out;
  XorLinearMiner{}.mine(ctx, out);
  EXPECT_TRUE(out.empty());  // < 8 samples: refuses to guess
}

TEST(StandardMiners, OrderedByInsightTier) {
  const auto miners = standard_miners();
  ASSERT_EQ(miners.size(), 7u);
  EXPECT_EQ(miners[0]->name(), "reset_value");
  EXPECT_EQ(miners[1]->name(), "equality");
  EXPECT_EQ(miners[2]->name(), "difference");
  EXPECT_EQ(miners[3]->name(), "bounds");
  EXPECT_EQ(miners[4]->name(), "onehot");
  EXPECT_EQ(miners[5]->name(), "implication");
  EXPECT_EQ(miners[6]->name(), "xor_linear");
}

TEST(MinedCandidatesProperty, AllProposalsHoldOnTheirOwnSamples) {
  // Meta-property: every miner's output must be consistent with the samples
  // it saw (unsoundness enters only via the noise layer).
  for (const char* design : {"sync_counters", "fifo_ctrl", "token_ring", "hamming74"}) {
    // Designs come from the zoo; build fresh tasks to get systems.
    auto task = genfv::designs::make_task(design);
    const auto samples = sample(task.ts, 31);
    util::Xoshiro256 rng(2);
    MiningContext ctx{task.ts, samples, nullptr, rng};
    std::vector<CandidateInvariant> out;
    for (const auto& miner : standard_miners()) miner->mine(ctx, out);
    // Spot-check via a compiler round trip would need SVA parsing; instead
    // every candidate must at least be non-empty, named, and confident.
    for (const auto& c : out) {
      EXPECT_FALSE(c.sva.empty());
      EXPECT_FALSE(c.origin.empty());
      EXPECT_GT(c.confidence, 0.0);
      EXPECT_LE(c.confidence, 1.0);
    }
  }
}

}  // namespace
}  // namespace genfv::genai
