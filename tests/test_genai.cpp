/// GenAI substrate tests: prompt rendering (Fig. 1 / Fig. 2 templates),
/// response extraction from messy markdown, model-profile registry,
/// simulated-LLM determinism and its text-only discipline, and the waveform
/// parse-back used in CEX-guided mode.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "designs/design.hpp"
#include "genai/prompt.hpp"
#include "genai/response_parser.hpp"
#include "genai/simulated_llm.hpp"
#include "sim/waveform.hpp"

namespace genfv::genai {
namespace {

PromptInputs sync_counter_inputs() {
  const auto& info = designs::design_by_name("sync_counters");
  PromptInputs in;
  in.design_name = info.name;
  in.spec = info.spec;
  in.rtl = info.rtl;
  in.target_properties = {info.targets[0].sva};
  return in;
}

TEST(Prompt, HelperGenerationContainsAllSections) {
  const Prompt p = render_helper_generation_prompt(sync_counter_inputs());
  EXPECT_FALSE(p.system.empty());
  EXPECT_NE(p.user.find("## Specification"), std::string::npos);
  EXPECT_NE(p.user.find(marker::kRtlFenceOpen), std::string::npos);
  EXPECT_NE(p.user.find("module sync_counters"), std::string::npos);
  EXPECT_NE(p.user.find("equal_count"), std::string::npos);
  // Fig. 1 prompt carries no CEX section.
  EXPECT_EQ(p.user.find(marker::kWaveFenceOpen), std::string::npos);
}

TEST(Prompt, CexRepairCarriesWaveformAndFailedProperty) {
  PromptInputs in = sync_counter_inputs();
  in.failed_property = "&count1 |-> &count2";
  in.cex_waveform = "count1 | ff |\ncount2 | 03 |";
  in.induction_depth = 5;
  in.proven_lemmas = {"property old; count1 == count2; endproperty"};
  const Prompt p = render_cex_repair_prompt(in);
  EXPECT_NE(p.user.find(marker::kWaveFenceOpen), std::string::npos);
  EXPECT_NE(p.user.find(marker::kFailedProperty), std::string::npos);
  EXPECT_NE(p.user.find("k = 5"), std::string::npos);
  EXPECT_NE(p.user.find("do not repeat these"), std::string::npos);
}

TEST(ResponseParser, ExtractsTaggedAndUntaggedBlocks) {
  const std::string completion = R"(Here are two assertions.

```sva
property h1; a == b; endproperty
```

Some prose. And an untagged block containing a property:

```
property h2; c |-> d; endproperty
```

And inline: property h3; e != f; endproperty — done.

A code block that is not an assertion:

```python
print("hello")
```
)";
  const auto found = extract_assertions(completion);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_NE(found[0].find("h1"), std::string::npos);
  EXPECT_NE(found[1].find("h2"), std::string::npos);
  EXPECT_NE(found[2].find("h3"), std::string::npos);
}

TEST(ResponseParser, EmptyAndNoAssertionCompletions) {
  EXPECT_TRUE(extract_assertions("").empty());
  EXPECT_TRUE(extract_assertions("I found no invariants, sorry.").empty());
}

TEST(ModelProfiles, RegistryMatchesPaperModels) {
  const auto names = known_models();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "gpt-4-turbo");
  EXPECT_EQ(names[1], "gpt-4o");
  EXPECT_EQ(names[2], "llama-3-70b");
  EXPECT_EQ(names[3], "gemini-1.5-pro");
  EXPECT_THROW(profile_by_name("gpt-5"), UsageError);
  // The OpenAI profiles must dominate on insight and noise — this encodes
  // the calibration the E5 bench depends on.
  for (const char* weak : {"llama-3-70b", "gemini-1.5-pro"}) {
    for (const char* strong : {"gpt-4-turbo", "gpt-4o"}) {
      EXPECT_GT(profile_by_name(strong).insight, profile_by_name(weak).insight);
      EXPECT_LT(profile_by_name(strong).hallucination_rate,
                profile_by_name(weak).hallucination_rate);
    }
  }
}

TEST(SimulatedLlm, DeterministicForSameSeed) {
  const Prompt prompt = render_helper_generation_prompt(sync_counter_inputs());
  SimulatedLlm a(profile_by_name("gpt-4o"), 1234);
  SimulatedLlm b(profile_by_name("gpt-4o"), 1234);
  EXPECT_EQ(a.complete(prompt).text, b.complete(prompt).text);
}

TEST(SimulatedLlm, FindsThePaperHelperFromThePrompt) {
  const Prompt prompt = render_helper_generation_prompt(sync_counter_inputs());
  SimulatedLlm llm(profile_by_name("gpt-4o"), 7);
  const Completion completion = llm.complete(prompt);
  EXPECT_EQ(completion.model, "gpt-4o");
  EXPECT_GT(completion.prompt_tokens, 0u);
  EXPECT_GT(completion.latency_seconds, 0.0);
  // Listing 3's helper must be among the extracted assertions.
  bool found = false;
  for (const auto& text : extract_assertions(completion.text)) {
    if (text.find("count1 == count2") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << completion.text;
}

TEST(SimulatedLlm, GracefulWithoutRtl) {
  SimulatedLlm llm(profile_by_name("gpt-4o"), 7);
  Prompt empty;
  empty.user = "Please generate helper assertions.";
  const Completion completion = llm.complete(empty);
  EXPECT_TRUE(extract_assertions(completion.text).empty());
}

TEST(SimulatedLlm, GracefulWithMalformedRtl) {
  SimulatedLlm llm(profile_by_name("gpt-4o"), 7);
  Prompt prompt;
  prompt.user = std::string("## Design: x\n\n") + marker::kRtlFenceOpen +
                "\nmodule broken (input a;\n" + marker::kFenceClose + "\n";
  const Completion completion = llm.complete(prompt);
  EXPECT_TRUE(extract_assertions(completion.text).empty());
}

TEST(SimulatedLlm, WeakProfilesEmitNoisierOutput) {
  // Across designs+seeds, llama must produce strictly fewer parseable true
  // findings than gpt-4o on an ECC design (insight gap), and at least one
  // run with junk (hallucination/syntax) output.
  const auto& info = designs::design_by_name("hamming74");
  PromptInputs in;
  in.design_name = info.name;
  in.spec = info.spec;
  in.rtl = info.rtl;
  const Prompt prompt = render_helper_generation_prompt(in);

  std::size_t strong_xor_findings = 0;
  std::size_t weak_xor_findings = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SimulatedLlm strong(profile_by_name("gpt-4o"), seed);
    SimulatedLlm weak(profile_by_name("llama-3-70b"), seed);
    for (const auto& text : extract_assertions(strong.complete(prompt).text)) {
      if (text.find('^') != std::string::npos) ++strong_xor_findings;
    }
    for (const auto& text : extract_assertions(weak.complete(prompt).text)) {
      if (text.find('^') != std::string::npos) ++weak_xor_findings;
    }
  }
  EXPECT_GT(strong_xor_findings, 0u);
  EXPECT_EQ(weak_xor_findings, 0u);  // llama's insight stops before xor_linear
}

TEST(WaveformParseBack, RoundTripsRenderedTraces) {
  auto task = designs::make_task("sync_counters");
  sim::RandomSimulator simulator(task.ts, 42);
  const sim::Trace trace = simulator.run(5);
  const std::string wave =
      sim::render_waveform(trace, sim::default_signals(task.ts), {});
  const auto frames = parse_waveform_table(wave, task.ts);
  ASSERT_EQ(frames.size(), trace.size());
  for (std::size_t f = 0; f < frames.size(); ++f) {
    for (const auto& s : task.ts.states()) {
      ASSERT_EQ(frames[f].at(s.var), trace.value(s.var, f)) << "frame " << f;
    }
    for (const ir::NodeRef in : task.ts.inputs()) {
      ASSERT_EQ(frames[f].at(in), trace.value(in, f));
    }
  }
}

TEST(WaveformParseBack, IgnoresUnknownRowsAndDecorations) {
  auto task = designs::make_task("sync_counters");
  const std::string wave =
      "       | t0 | t1 |\n"
      "-------+----+----+\n"
      "count1 | ff | 0  |\n"
      "bogus  | 12 | 13 |\n"
      "(* = frame where the property fails)\n";
  const auto frames = parse_waveform_table(wave, task.ts);
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].at(task.ts.lookup("count1")), 0xFFu);
  EXPECT_EQ(frames[1].at(task.ts.lookup("count1")), 0u);
}

TEST(SimulatedLlm, TokensEstimatedFromText) {
  EXPECT_EQ(estimate_tokens(""), 1u);
  EXPECT_EQ(estimate_tokens(std::string(400, 'x')), 101u);
}

}  // namespace
}  // namespace genfv::genai
