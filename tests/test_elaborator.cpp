/// Elaboration tests: RTL -> transition-system mapping, reset inference
/// (async, sync, active-low), Verilog scheduling semantics (blocking vs
/// nonblocking, hold), comb networks and their diagnostics — each verified
/// end-to-end through the reference simulator.

#include <gtest/gtest.h>

#include "hdl/elaborator.hpp"
#include "sim/random_sim.hpp"

namespace genfv::hdl {
namespace {

using ir::NodeRef;

TEST(Elaborator, PaperListing1Structure) {
  const auto result = elaborate_source(R"(
module sync_counters (input clk, rst, output logic [31:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 32'b0;
      count2 <= 32'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
)");
  EXPECT_EQ(result.clock, "clk");
  EXPECT_EQ(result.reset, "rst");
  EXPECT_FALSE(result.reset_active_low);
  const auto& ts = result.ts;
  EXPECT_EQ(ts.name(), "sync_counters");
  ASSERT_EQ(ts.inputs().size(), 1u);  // rst only; clk is implicit
  EXPECT_EQ(ts.inputs()[0]->name(), "rst");
  ASSERT_EQ(ts.states().size(), 2u);
  for (const auto& s : ts.states()) {
    ASSERT_NE(s.init, nullptr);
    EXPECT_TRUE(s.init->is_const());
    EXPECT_EQ(s.init->value(), 0u);
  }
  // The reset-inactive constraint is added by default.
  ASSERT_EQ(ts.constraints().size(), 1u);
}

TEST(Elaborator, SimulationMatchesRtlIntent) {
  auto result = elaborate_source(R"(
module counter (input clk, rst, input en, output logic [7:0] q);
  always_ff @(posedge clk) begin
    if (rst) q <= 8'h0;
    else if (en) q <= q + 8'h1;
  end
endmodule
)");
  auto& ts = result.ts;
  const NodeRef q = ts.lookup("q");
  const NodeRef en = ts.lookup("en");
  const NodeRef rst = ts.lookup("rst");
  // en=1, rst=0: increments. en=0: holds.
  sim::Assignment env{{q, 5}, {en, 1}, {rst, 0}};
  EXPECT_EQ(sim::step(ts, env).at(q), 6u);
  env[en] = 0;
  EXPECT_EQ(sim::step(ts, env).at(q), 5u);  // hold without else-branch
  env[rst] = 1;
  EXPECT_EQ(sim::step(ts, env).at(q), 0u);  // sync reset dominates
}

TEST(Elaborator, SyncResetInferredByNameHeuristic) {
  const auto result = elaborate_source(R"(
module m (input clk, rst, input d, output logic q);
  always_ff @(posedge clk) begin
    if (rst) q <= 1'b0;
    else q <= d;
  end
endmodule
)");
  EXPECT_EQ(result.reset, "rst");
  ASSERT_NE(result.ts.states()[0].init, nullptr);
  EXPECT_EQ(result.ts.states()[0].init->value(), 0u);
}

TEST(Elaborator, ActiveLowAsyncReset) {
  const auto result = elaborate_source(R"(
module m (input clk, rst_n, input d, output logic q);
  always @(posedge clk or negedge rst_n) begin
    if (!rst_n) q <= 1'b1;
    else q <= d;
  end
endmodule
)");
  EXPECT_EQ(result.reset, "rst_n");
  EXPECT_TRUE(result.reset_active_low);
  EXPECT_EQ(result.ts.states()[0].init->value(), 1u);
  // Constraint holds rst_n high (inactive).
  ASSERT_EQ(result.ts.constraints().size(), 1u);
  const NodeRef rst_n = result.ts.lookup("rst_n");
  EXPECT_EQ(sim::evaluate(result.ts.constraints()[0], {{rst_n, 1}}), 1u);
  EXPECT_EQ(sim::evaluate(result.ts.constraints()[0], {{rst_n, 0}}), 0u);
}

TEST(Elaborator, DeclarationInitializerWinsOverResetDerivation) {
  const auto result = elaborate_source(R"(
module m (input clk, input d, output logic q);
  logic r = 1'b1;
  always_ff @(posedge clk) begin
    r <= d;
    q <= r;
  end
endmodule
)");
  const ir::StateVar* r = result.ts.state_of(result.ts.lookup("r"));
  ASSERT_NE(r, nullptr);
  ASSERT_NE(r->init, nullptr);
  EXPECT_EQ(r->init->value(), 1u);
  // q has no initializer and no reset: unconstrained.
  const ir::StateVar* q = result.ts.state_of(result.ts.lookup("q"));
  EXPECT_EQ(q->init, nullptr);
}

TEST(Elaborator, BlockingVsNonblockingScheduling) {
  // Classic swap: nonblocking RHS reads pre-clock values.
  auto result = elaborate_source(R"(
module swap (input clk, output logic [3:0] a, b);
  always_ff @(posedge clk) begin
    a <= b;
    b <= a;
  end
endmodule
)");
  auto& ts = result.ts;
  sim::Assignment env{{ts.lookup("a"), 3}, {ts.lookup("b"), 9}};
  const auto next = sim::step(ts, env);
  EXPECT_EQ(next.at(ts.lookup("a")), 9u);
  EXPECT_EQ(next.at(ts.lookup("b")), 3u);
}

TEST(Elaborator, CombBlocksAndAssignNetworksInDependencyOrder) {
  auto result = elaborate_source(R"(
module net (input [3:0] x, output [3:0] out);
  wire [3:0] mid;
  wire [3:0] top;
  assign out = top + 4'h1;
  assign top = mid ^ 4'h3;
  assign mid = x & 4'hC;
endmodule
)");
  auto& ts = result.ts;
  const NodeRef out = ts.lookup("out");
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(sim::evaluate(out, {{ts.lookup("x"), 0x5}}), ((0x5u & 0xC) ^ 0x3) + 1);
}

TEST(Elaborator, AlwaysCombWithControlFlow) {
  auto result = elaborate_source(R"(
module sel (input [1:0] s, input [7:0] a, b, output logic [7:0] y);
  always_comb begin
    if (s == 2'd0) y = a;
    else if (s == 2'd1) y = b;
    else y = a + b;
  end
endmodule
)");
  auto& ts = result.ts;
  const NodeRef y = ts.lookup("y");
  sim::Assignment env{{ts.lookup("s"), 0}, {ts.lookup("a"), 10}, {ts.lookup("b"), 20}};
  EXPECT_EQ(sim::evaluate(y, env), 10u);
  env[ts.lookup("s")] = 1;
  EXPECT_EQ(sim::evaluate(y, env), 20u);
  env[ts.lookup("s")] = 3;
  EXPECT_EQ(sim::evaluate(y, env), 30u);
}

TEST(Elaborator, CaseStatementFirstMatchWins) {
  auto result = elaborate_source(R"(
module c (input clk, input [1:0] s, output logic [3:0] q);
  always_ff @(posedge clk) begin
    case (s)
      2'd0: q <= 4'h1;
      2'd1, 2'd2: q <= 4'h2;
      default: q <= 4'hF;
    endcase
  end
endmodule
)");
  auto& ts = result.ts;
  const NodeRef q = ts.lookup("q");
  const NodeRef s = ts.lookup("s");
  sim::Assignment env{{q, 0}, {s, 0}};
  EXPECT_EQ(sim::step(ts, env).at(q), 1u);
  env[s] = 2;
  EXPECT_EQ(sim::step(ts, env).at(q), 2u);
  env[s] = 3;
  EXPECT_EQ(sim::step(ts, env).at(q), 0xFu);
}

TEST(Elaborator, PartSelectAndBitSelectLvalues) {
  auto result = elaborate_source(R"(
module ps (input clk, input [3:0] lo, input b, output logic [7:0] q);
  always_ff @(posedge clk) begin
    q[3:0] <= lo;
    q[7] <= b;
  end
endmodule
)");
  auto& ts = result.ts;
  const NodeRef q = ts.lookup("q");
  sim::Assignment env{{q, 0x55}, {ts.lookup("lo"), 0xA}, {ts.lookup("b"), 1}};
  // bits [6:4] hold old value 0x5 = 0b101.
  EXPECT_EQ(sim::step(ts, env).at(q), 0xDAu);  // 1 101 1010
}

TEST(Elaborator, DynamicIndexLvalue) {
  auto result = elaborate_source(R"(
module di (input clk, input [2:0] i, input b, output logic [7:0] q);
  always_ff @(posedge clk) q[i] <= b;
endmodule
)");
  auto& ts = result.ts;
  sim::Assignment env{{ts.lookup("q"), 0x00}, {ts.lookup("i"), 5}, {ts.lookup("b"), 1}};
  EXPECT_EQ(sim::step(ts, env).at(ts.lookup("q")), 0x20u);
}

TEST(Elaborator, ParametersFoldIntoConstants) {
  auto result = elaborate_source(R"(
module p (input clk, output logic [7:0] q);
  localparam STEP = 3;
  localparam TWICE = STEP * 2;
  always_ff @(posedge clk) q <= q + TWICE;
endmodule
)");
  auto& ts = result.ts;
  sim::Assignment env{{ts.lookup("q"), 10}};
  EXPECT_EQ(sim::step(ts, env).at(ts.lookup("q")), 16u);
}

TEST(Elaborator, UnassignedRegisterHolds) {
  auto result = elaborate_source(R"(
module h (input clk, input en, input [3:0] d, output logic [3:0] q);
  always_ff @(posedge clk) begin
    if (en) q <= d;
  end
endmodule
)");
  auto& ts = result.ts;
  sim::Assignment env{{ts.lookup("q"), 7}, {ts.lookup("en"), 0}, {ts.lookup("d"), 1}};
  EXPECT_EQ(sim::step(ts, env).at(ts.lookup("q")), 7u);
}

TEST(Elaborator, Diagnostics) {
  // Combinational cycle.
  EXPECT_THROW(elaborate_source(R"(
module loop (output a, b);
  assign a = b;
  assign b = a;
endmodule
)"),
               ParseError);
  // Inferred latch in always_comb.
  EXPECT_THROW(elaborate_source(R"(
module latch (input c, input d, output logic q);
  always_comb begin
    if (c) q = d;
  end
endmodule
)"),
               ParseError);
  // Multiple drivers.
  EXPECT_THROW(elaborate_source(R"(
module dd (input a, output y);
  assign y = a;
  assign y = !a;
endmodule
)"),
               ParseError);
  // Mixed sequential/combinational driver.
  EXPECT_THROW(elaborate_source(R"(
module mix (input clk, input a, output logic y);
  assign y = a;
  always_ff @(posedge clk) y <= a;
endmodule
)"),
               ParseError);
  // Two clocks.
  EXPECT_THROW(elaborate_source(R"(
module cc (input clk1, clk2, input d, output logic q, r);
  always_ff @(posedge clk1) q <= d;
  always_ff @(posedge clk2) r <= d;
endmodule
)"),
               ParseError);
  // Assignment to an input.
  EXPECT_THROW(elaborate_source(R"(
module ai (input clk, input d, output logic q);
  always_ff @(posedge clk) d <= q;
endmodule
)"),
               ParseError);
  // Use of undeclared signal.
  EXPECT_THROW(elaborate_source(R"(
module ud (input clk, output logic q);
  always_ff @(posedge clk) q <= ghost;
endmodule
)"),
               ParseError);
}

TEST(Elaborator, ResetOverrideOption) {
  ElaborateOptions options;
  options.reset_name = "clear";
  options.reset_active_low = false;
  const auto result = elaborate_source(R"(
module m (input clk, clear, input d, output logic q);
  always_ff @(posedge clk) begin
    if (clear) q <= 1'b0;
    else q <= d;
  end
endmodule
)",
                                       options);
  EXPECT_EQ(result.reset, "clear");
  EXPECT_EQ(result.ts.states()[0].init->value(), 0u);
}

TEST(Elaborator, NoResetConstraintWhenDisabled) {
  ElaborateOptions options;
  options.constrain_reset_inactive = false;
  const auto result = elaborate_source(R"(
module m (input clk, rst, input d, output logic q);
  always_ff @(posedge clk) begin
    if (rst) q <= 1'b0;
    else q <= d;
  end
endmodule
)",
                                       options);
  EXPECT_TRUE(result.ts.constraints().empty());
}

}  // namespace
}  // namespace genfv::hdl
