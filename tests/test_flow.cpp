/// Flow-layer tests: the review gate, the candidate lifecycle through
/// LemmaManager (every status), joint-induction rescue, and both paper flows
/// driven by a *scripted* LLM — so flow behaviour is pinned independently of
/// the simulated model.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "designs/design.hpp"
#include "flow/cex_repair_flow.hpp"
#include "flow/helper_gen_flow.hpp"
#include "genai/prompt.hpp"
#include "genai/simulated_llm.hpp"

namespace genfv::flow {
namespace {

/// Plays back canned completions; records prompts for assertions.
class ScriptedLlm : public genai::LlmClient {
 public:
  explicit ScriptedLlm(std::vector<std::string> completions)
      : completions_(std::move(completions)) {}

  genai::Completion complete(const genai::Prompt& prompt) override {
    prompts_.push_back(prompt);
    genai::Completion c;
    c.model = model_name();
    c.text = next_ < completions_.size() ? completions_[next_++] : "";
    c.prompt_tokens = genai::estimate_tokens(prompt.user);
    c.completion_tokens = genai::estimate_tokens(c.text);
    c.latency_seconds = 0.01;
    return c;
  }

  std::string model_name() const override { return "scripted"; }

  const std::vector<genai::Prompt>& prompts() const { return prompts_; }

 private:
  std::vector<std::string> completions_;
  std::size_t next_ = 0;
  std::vector<genai::Prompt> prompts_;
};

VerificationTask counters_task() { return designs::make_task("sync_counters"); }

TEST(ReviewGate, ScreensOutNonInvariants) {
  auto task = counters_task();
  auto& nm = task.ts.nm();
  ReviewGate gate(task.ts, ReviewPolicy{});
  // count1 == 5 is violated quickly in any run.
  const auto witness =
      gate.screen(nm.mk_eq(task.ts.lookup("count1"), nm.mk_const(5, 32)));
  ASSERT_TRUE(witness.has_value());
  // The true helper survives screening.
  EXPECT_FALSE(
      gate.screen(nm.mk_eq(task.ts.lookup("count1"), task.ts.lookup("count2")))
          .has_value());
}

TEST(ReviewGate, DisabledScreenPassesEverything) {
  auto task = counters_task();
  auto& nm = task.ts.nm();
  ReviewPolicy policy;
  policy.sim_screen = false;
  ReviewGate gate(task.ts, policy);
  EXPECT_FALSE(gate.screen(nm.mk_eq(task.ts.lookup("count1"), nm.mk_const(5, 32)))
                   .has_value());
}

TEST(LemmaManager, EveryCandidateStatusIsReachable) {
  auto task = counters_task();
  LemmaManager manager(task, {{.max_k = 4}, ReviewPolicy{}, true});
  const auto outcomes = manager.process({
      "property good; count1 == count2; endproperty",       // Proven
      "property syn; count1 == ; endproperty",              // SyntaxRejected
      "property unk; ghost_reg == 1'b0; endproperty",       // CompileRejected
      "property dup; count1 == count2; endproperty",        // Duplicate (of lemma)
      "property halluc; count1 <= 32'h7fffffff; endproperty",  // SimFalsified (eventually >2^31; screen may miss) or ProofFailed
      "property trivial; 1'b1; endproperty",                // Duplicate (trivially true)
  });
  ASSERT_EQ(outcomes.size(), 6u);
  EXPECT_EQ(outcomes[0].status, CandidateStatus::Proven);
  EXPECT_EQ(outcomes[1].status, CandidateStatus::SyntaxRejected);
  EXPECT_EQ(outcomes[2].status, CandidateStatus::CompileRejected);
  EXPECT_EQ(outcomes[3].status, CandidateStatus::Duplicate);
  EXPECT_TRUE(outcomes[4].status == CandidateStatus::SimFalsified ||
              outcomes[4].status == CandidateStatus::ProofFailed)
      << to_string(outcomes[4].status);
  EXPECT_EQ(outcomes[5].status, CandidateStatus::Duplicate);
  ASSERT_EQ(manager.lemma_exprs().size(), 1u);
  EXPECT_GT(manager.prove_seconds(), 0.0);
}

TEST(LemmaManager, TargetDuplicateIsDetected) {
  auto task = counters_task();
  LemmaManager manager(task, {{.max_k = 4}, ReviewPolicy{}, true});
  const auto outcomes =
      manager.process({"property t; &count1 |-> &count2; endproperty"});
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].status, CandidateStatus::Duplicate);
}

TEST(LemmaManager, JointInductionRescuesMutuallyDependentCandidates) {
  auto task = designs::make_task("dual_accumulator");
  // max_k = 1: sum equality is 2-inductive on its own, so keep k below that
  // to force the rescue path.
  LemmaManager manager(task, {{.max_k = 1}, ReviewPolicy{}, true});
  // sum equality alone is not inductive; acc equality alone is. Presented in
  // the "wrong" order (sum first), the solo pass fails sum equality, and the
  // joint pass must rescue it together with the target.
  const auto outcomes = manager.process({
      "property sums; sum_a == sum_b; endproperty",
      "property accs; acc_a == acc_b; endproperty",
  });
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_EQ(outcomes[0].status, CandidateStatus::Proven);
  EXPECT_EQ(outcomes[1].status, CandidateStatus::Proven);
  EXPECT_NE(outcomes[0].detail.find("joint"), std::string::npos);
  EXPECT_TRUE(manager.targets_proven_jointly());
}

TEST(LemmaManager, WithoutJointInductionSumEqualityFails) {
  auto task = designs::make_task("dual_accumulator");
  LemmaManager manager(task, {{.max_k = 1}, ReviewPolicy{}, false});
  const auto outcomes = manager.process({
      "property sums; sum_a == sum_b; endproperty",
  });
  EXPECT_EQ(outcomes[0].status, CandidateStatus::ProofFailed);
}

TEST(HelperGenFlow, ProvesPaperExampleWithScriptedHelper) {
  auto task = counters_task();
  ScriptedLlm llm({R"(The counters are always equal:
```sva
property helper; count1 == count2; endproperty
```
)"});
  FlowOptions options;
  options.engine.max_k = 4;
  HelperGenFlow flow(llm, options);
  const FlowReport report = flow.run(task);

  EXPECT_EQ(report.flow, "helper_generation");
  EXPECT_TRUE(report.all_targets_proven());
  ASSERT_EQ(report.targets.size(), 1u);
  EXPECT_EQ(report.targets[0].result.k, 1u);
  ASSERT_EQ(report.admitted_lemmas.size(), 1u);
  // The Fig. 1 prompt carried spec + RTL but no waveform.
  ASSERT_EQ(llm.prompts().size(), 1u);
  EXPECT_NE(llm.prompts()[0].user.find("## Specification"), std::string::npos);
  EXPECT_EQ(llm.prompts()[0].user.find(genai::marker::kWaveFenceOpen), std::string::npos);
  const std::string rendered = report.to_string();
  EXPECT_NE(rendered.find("proven"), std::string::npos);
}

TEST(HelperGenFlow, UselessCompletionLeavesTargetUnproven) {
  auto task = counters_task();
  ScriptedLlm llm({"I could not find any invariants."});
  FlowOptions options;
  options.engine.max_k = 4;
  HelperGenFlow flow(llm, options);
  const FlowReport report = flow.run(task);
  EXPECT_FALSE(report.all_targets_proven());
  EXPECT_TRUE(report.admitted_lemmas.empty());
  EXPECT_EQ(report.targets[0].result.verdict, mc::Verdict::Unknown);
}

TEST(CexRepairFlow, IteratesUntilProofAndSendsWaveform) {
  auto task = counters_task();
  // First round: a hallucination that the gate rejects. Second round: the
  // real helper. The flow must converge in two repair iterations.
  ScriptedLlm llm({
      R"(```sva
property wrong; count1 <= 32'h000000ff; endproperty
```)",
      R"(```sva
property helper; count1 == count2; endproperty
```)",
  });
  FlowOptions options;
  options.engine.max_k = 4;
  options.max_iterations = 4;
  CexRepairFlow flow(llm, options);
  const FlowReport report = flow.run(task);

  EXPECT_TRUE(report.all_targets_proven());
  EXPECT_EQ(report.iterations.size(), 2u);
  EXPECT_EQ(report.iterations[0].lemmas_admitted, 0u);
  EXPECT_EQ(report.iterations[1].lemmas_admitted, 1u);
  // Fig. 2 prompts must carry the failing property and the CEX waveform.
  ASSERT_EQ(llm.prompts().size(), 2u);
  for (const auto& prompt : llm.prompts()) {
    EXPECT_NE(prompt.user.find(genai::marker::kWaveFenceOpen), std::string::npos);
    EXPECT_NE(prompt.user.find(genai::marker::kFailedProperty), std::string::npos);
  }
  // Round 2 must list nothing under proven lemmas (none admitted yet) but
  // round prompts accumulate admitted lemmas once they exist.
}

TEST(CexRepairFlow, StopsWhenModelMakesNoProgress) {
  auto task = counters_task();
  ScriptedLlm llm({"no ideas", "still nothing", "sorry"});
  FlowOptions options;
  options.engine.max_k = 4;
  options.max_iterations = 5;
  CexRepairFlow flow(llm, options);
  const FlowReport report = flow.run(task);
  EXPECT_FALSE(report.all_targets_proven());
  EXPECT_EQ(report.iterations.size(), 1u);  // gave up after one empty round
}

TEST(CexRepairFlow, AlreadyProvableNeedsZeroIterations) {
  auto task = designs::make_task("lfsr16");
  ScriptedLlm llm({});
  FlowOptions options;
  options.engine.max_k = 4;
  CexRepairFlow flow(llm, options);
  const FlowReport report = flow.run(task);
  EXPECT_TRUE(report.all_targets_proven());
  EXPECT_TRUE(report.iterations.empty());
  EXPECT_TRUE(llm.prompts().empty());  // the model was never consulted
}

TEST(CexRepairFlow, GateAblationStillSound) {
  // With the simulation screen off, hallucinations reach the prover and are
  // rejected there — more effort, same verdicts (soundness firewall).
  auto task = counters_task();
  ScriptedLlm llm({
      R"(```sva
property wrong; count1 <= 32'h000000ff; endproperty
```)",
      R"(```sva
property helper; count1 == count2; endproperty
```)",
  });
  FlowOptions options;
  options.engine.max_k = 4;
  options.review.sim_screen = false;
  CexRepairFlow flow(llm, options);
  const FlowReport report = flow.run(task);
  EXPECT_TRUE(report.all_targets_proven());
  // The wrong candidate must show up as ProofFailed, never as a lemma.
  EXPECT_EQ(report.candidates_with(CandidateStatus::ProofFailed), 1u);
  EXPECT_EQ(report.admitted_lemmas.size(), 1u);
}

TEST(CexRepairFlow, PdrEngineProvesWithoutLlmHelpAndExportsLemmas) {
  // Engine selection end to end: with PDR as the target engine, token_ring
  // closes with zero LLM round trips, and the inductive frame's clauses
  // come back as admitted lemmas the helper flow can reuse.
  auto task = designs::make_task("token_ring");
  ScriptedLlm llm({});
  FlowOptions options;
  options.engine.max_k = 8;
  options.target_engine = mc::EngineKind::Pdr;
  CexRepairFlow flow(llm, options);
  const FlowReport report = flow.run(task);

  EXPECT_EQ(report.engine, "pdr");
  EXPECT_TRUE(report.all_targets_proven());
  EXPECT_TRUE(llm.prompts().empty());
  EXPECT_FALSE(report.admitted_lemmas.empty());
  // Exported lemmas are well-formed SVA: they feed back into a second flow
  // run as provable candidates (the bidirectional exchange).
  auto task2 = designs::make_task("token_ring");
  LemmaManager manager(task2, {{.max_k = 8}, ReviewPolicy{}, true});
  const auto outcomes = manager.process(report.admitted_lemmas);
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.status == CandidateStatus::Proven ||
                outcome.status == CandidateStatus::Duplicate)
        << outcome.sva << " -> " << to_string(outcome.status);
  }
}

TEST(CexRepairFlow, PdrUnknownFallsBackToStepCexAndRepairs) {
  // PDR alone is stuck on sync_counters (the equality invariant is not
  // clause-compact), so the flow must harvest a k-induction step CEX to
  // prompt with; the admitted helper then seeds PDR's frames and the proof
  // closes — the full bidirectional loop in one run.
  auto task = counters_task();
  ScriptedLlm llm({R"(```sva
property helper; count1 == count2; endproperty
```
)"});
  FlowOptions options;
  options.engine.max_k = 4;
  options.target_engine = mc::EngineKind::Pdr;
  CexRepairFlow flow(llm, options);
  const FlowReport report = flow.run(task);

  EXPECT_EQ(report.engine, "pdr");
  ASSERT_EQ(llm.prompts().size(), 1u);  // one repair round trip happened
  EXPECT_TRUE(report.all_targets_proven());
  EXPECT_FALSE(report.admitted_lemmas.empty());
}

TEST(FlowReport, CountsByStatus) {
  FlowReport report;
  IterationReport it;
  it.candidates.push_back({.sva = "a", .status = CandidateStatus::Proven});
  it.candidates.push_back({.sva = "b", .status = CandidateStatus::SimFalsified});
  it.candidates.push_back({.sva = "c", .status = CandidateStatus::Proven});
  report.iterations.push_back(it);
  EXPECT_EQ(report.candidates_total(), 3u);
  EXPECT_EQ(report.candidates_with(CandidateStatus::Proven), 2u);
  EXPECT_EQ(report.candidates_with(CandidateStatus::SyntaxRejected), 0u);
  EXPECT_FALSE(report.all_targets_proven());  // no targets recorded
}

TEST(FlowSession, SequentialJobsMatchFreshProcesses) {
  // The one-shot-lifetime fix: a resident session that runs job after job
  // must behave bit-for-bit like a fresh process per job, even when a lemma
  // pass left residue in the transition system between jobs.
  mc::EngineOptions options;
  options.max_steps = 16;
  const auto fresh_process = [&options] {
    EngineSession session(designs::make_task("sequencer"));
    return session.run_job(mc::EngineKind::Pdr, options);
  };
  const mc::EngineResult baseline = fresh_process();
  ASSERT_EQ(baseline.verdict, mc::Verdict::Proven);

  EngineSession session(designs::make_task("sequencer"));
  const std::size_t pristine_states = session.task().ts.states().size();
  const std::size_t pristine_properties = session.task().ts.num_properties();
  const mc::EngineResult first = session.run_job(mc::EngineKind::Pdr, options);

  // Simulate LemmaManager residue: a $past auxiliary register and a
  // candidate property appended to the session's system after job one.
  ir::TransitionSystem& ts = session.task().ts;
  const ir::NodeRef aux = ts.add_state("residue$past", 4);
  ts.set_init(aux, ts.nm().mk_const(0, 4));
  ts.set_next(aux, aux);
  ts.add_property({"residue_candidate", ts.nm().mk_true(),
                   ir::PropertyRole::Candidate, ""});

  const mc::EngineResult second = session.run_job(mc::EngineKind::Pdr, options);
  EXPECT_EQ(session.jobs_run(), 2u);
  EXPECT_EQ(ts.states().size(), pristine_states);
  EXPECT_EQ(ts.num_properties(), pristine_properties);

  for (const mc::EngineResult* result : {&first, &second}) {
    EXPECT_EQ(result->verdict, baseline.verdict);
    EXPECT_EQ(result->depth, baseline.depth);
    EXPECT_EQ(result->stats.sat_calls, baseline.stats.sat_calls);
    EXPECT_EQ(result->stats.conflicts, baseline.stats.conflicts);
    EXPECT_EQ(result->stats.decisions, baseline.stats.decisions);
    EXPECT_EQ(result->invariant.size(), baseline.invariant.size());
  }
}

}  // namespace
}  // namespace genfv::flow
