/// IR tests: hash-consing, constant folding and algebraic simplification,
/// width/sort checking, transition-system construction rules, substitution.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "ir/clone.hpp"
#include "ir/printer.hpp"
#include "ir/serialize.hpp"
#include "ir/struct_hash.hpp"
#include "ir/substitute.hpp"
#include "ir/transition_system.hpp"

namespace genfv::ir {
namespace {

TEST(NodeManager, HashConsingMakesStructuralEqualityPointerEquality) {
  NodeManager nm;
  const NodeRef a = nm.mk_input("a", 8);
  const NodeRef b = nm.mk_input("b", 8);
  EXPECT_EQ(nm.mk_add(a, b), nm.mk_add(a, b));
  EXPECT_EQ(nm.mk_add(a, b), nm.mk_add(b, a));  // commutative normalization
  EXPECT_NE(nm.mk_add(a, b), nm.mk_sub(a, b));
  EXPECT_EQ(nm.mk_const(5, 8), nm.mk_const(5, 8));
  EXPECT_NE(nm.mk_const(5, 8), nm.mk_const(5, 9));
}

TEST(NodeManager, InputsAreNominal) {
  NodeManager nm;
  EXPECT_NE(nm.mk_input("x", 4), nm.mk_input("x", 4));
  EXPECT_NE(nm.mk_state("s", 4), nm.mk_state("s", 4));
}

TEST(NodeManager, ConstantFolding) {
  NodeManager nm;
  const NodeRef five = nm.mk_const(5, 8);
  const NodeRef three = nm.mk_const(3, 8);
  EXPECT_EQ(nm.mk_add(five, three), nm.mk_const(8, 8));
  EXPECT_EQ(nm.mk_mul(five, three), nm.mk_const(15, 8));
  EXPECT_EQ(nm.mk_sub(three, five), nm.mk_const(0xFE, 8));  // wraps
  EXPECT_EQ(nm.mk_eq(five, three), nm.mk_false());
  EXPECT_EQ(nm.mk_ult(three, five), nm.mk_true());
  EXPECT_EQ(nm.mk_concat(nm.mk_const(0xA, 4), nm.mk_const(0xB, 4)), nm.mk_const(0xAB, 8));
  EXPECT_EQ(nm.mk_extract(nm.mk_const(0xAB, 8), 7, 4), nm.mk_const(0xA, 4));
  EXPECT_EQ(nm.mk_redxor(nm.mk_const(0b0111, 4)), nm.mk_true());
  EXPECT_EQ(nm.mk_udiv(five, nm.mk_const(0, 8)), nm.mk_const(0xFF, 8));  // SMT-LIB
  EXPECT_EQ(nm.mk_urem(five, nm.mk_const(0, 8)), five);
}

TEST(NodeManager, AlgebraicSimplification) {
  NodeManager nm;
  const NodeRef x = nm.mk_input("x", 8);
  const NodeRef zero = nm.mk_const(0, 8);
  const NodeRef ones = nm.mk_ones(8);
  EXPECT_EQ(nm.mk_and(x, zero), zero);
  EXPECT_EQ(nm.mk_and(x, ones), x);
  EXPECT_EQ(nm.mk_or(x, zero), x);
  EXPECT_EQ(nm.mk_or(x, ones), ones);
  EXPECT_EQ(nm.mk_xor(x, x), zero);
  EXPECT_EQ(nm.mk_xor(x, zero), x);
  EXPECT_EQ(nm.mk_xor(x, ones), nm.mk_not(x));
  EXPECT_EQ(nm.mk_add(x, zero), x);
  EXPECT_EQ(nm.mk_sub(x, x), zero);
  EXPECT_EQ(nm.mk_not(nm.mk_not(x)), x);
  EXPECT_EQ(nm.mk_eq(x, x), nm.mk_true());
  EXPECT_EQ(nm.mk_ult(x, x), nm.mk_false());
  EXPECT_EQ(nm.mk_ule(zero, x), nm.mk_true());
  EXPECT_EQ(nm.mk_shl(x, zero), x);
}

TEST(NodeManager, BooleanIteAndEqReductions) {
  NodeManager nm;
  const NodeRef c = nm.mk_input("c", 1);
  const NodeRef x = nm.mk_input("x", 8);
  const NodeRef y = nm.mk_input("y", 8);
  EXPECT_EQ(nm.mk_ite(nm.mk_true(), x, y), x);
  EXPECT_EQ(nm.mk_ite(nm.mk_false(), x, y), y);
  EXPECT_EQ(nm.mk_ite(c, x, x), x);
  EXPECT_EQ(nm.mk_ite(c, nm.mk_true(), nm.mk_false()), c);
  EXPECT_EQ(nm.mk_eq(c, nm.mk_true()), c);
  EXPECT_EQ(nm.mk_eq(c, nm.mk_false()), nm.mk_not(c));
  EXPECT_EQ(nm.mk_implies(nm.mk_false(), c), nm.mk_true());
  EXPECT_EQ(nm.mk_implies(c, c), nm.mk_true());
}

TEST(NodeManager, NestedExtractFolds) {
  NodeManager nm;
  const NodeRef x = nm.mk_input("x", 16);
  const NodeRef inner = nm.mk_extract(x, 11, 4);  // 8 bits
  const NodeRef outer = nm.mk_extract(inner, 5, 2);
  EXPECT_EQ(outer, nm.mk_extract(x, 9, 6));
}

TEST(NodeManager, WidthChecksThrow) {
  NodeManager nm;
  const NodeRef a = nm.mk_input("a", 8);
  const NodeRef b = nm.mk_input("b", 4);
  EXPECT_THROW(nm.mk_add(a, b), SortError);
  EXPECT_THROW(nm.mk_eq(a, b), SortError);
  EXPECT_THROW(nm.mk_extract(a, 8, 0), SortError);
  EXPECT_THROW(nm.mk_extract(a, 2, 3), SortError);
  EXPECT_THROW(nm.mk_zext(a, 4), SortError);
  EXPECT_THROW(nm.mk_ite(a, a, a), SortError);  // condition must be width 1
  EXPECT_THROW(nm.mk_const(0, 0), SortError);
  EXPECT_THROW(nm.mk_const(0, 65), SortError);
  const NodeRef wide = nm.mk_input("w", 40);
  EXPECT_THROW(nm.mk_concat(wide, wide), SortError);  // exceeds 64
}

TEST(NodeManager, ResizeSemantics) {
  NodeManager nm;
  const NodeRef x = nm.mk_input("x", 8);
  EXPECT_EQ(nm.mk_resize(x, 8), x);
  EXPECT_EQ(nm.mk_resize(x, 12)->width(), 12u);
  EXPECT_EQ(nm.mk_resize(x, 3), nm.mk_extract(x, 2, 0));
}

TEST(TransitionSystem, BuildAndLookup) {
  TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef in = ts.add_input("in", 4);
  const NodeRef st = ts.add_state("st", 4);
  ts.set_init(st, nm.mk_const(0, 4));
  ts.set_next(st, nm.mk_add(st, in));
  ts.add_signal("sum", nm.mk_add(st, in));
  EXPECT_EQ(ts.lookup("in"), in);
  EXPECT_EQ(ts.lookup("st"), st);
  EXPECT_NE(ts.lookup("sum"), nullptr);
  EXPECT_EQ(ts.lookup("nope"), nullptr);
  EXPECT_NO_THROW(ts.validate());
}

TEST(TransitionSystem, RejectsDuplicatesAndForeignStates) {
  TransitionSystem ts;
  auto& nm = ts.nm();
  (void)ts.add_input("x", 4);
  EXPECT_THROW(ts.add_state("x", 4), UsageError);
  const NodeRef foreign = nm.mk_state("foreign", 4);
  EXPECT_THROW(ts.set_next(foreign, nm.mk_const(0, 4)), UsageError);
  const NodeRef st = ts.add_state("s", 4);
  EXPECT_THROW(ts.set_init(st, nm.mk_const(0, 8)), SortError);  // width mismatch
}

TEST(TransitionSystem, ValidateRequiresNextFunctions) {
  TransitionSystem ts;
  (void)ts.add_state("s", 4);
  EXPECT_THROW(ts.validate(), UsageError);
}

TEST(TransitionSystem, PropertiesMustBeBool) {
  TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef st = ts.add_state("s", 4);
  ts.set_next(st, st);
  EXPECT_THROW(ts.add_property({"bad", st, PropertyRole::Target, ""}), SortError);
  const std::size_t idx =
      ts.add_property({"ok", nm.mk_eq(st, nm.mk_const(0, 4)), PropertyRole::Target, ""});
  EXPECT_EQ(ts.property(idx).name, "ok");
}

TEST(Substitute, RenamesLeavesAndRefolds) {
  NodeManager nm;
  const NodeRef a = nm.mk_state("a", 8);
  const NodeRef b = nm.mk_state("b", 8);
  const NodeRef expr = nm.mk_add(a, nm.mk_const(1, 8));
  const NodeRef renamed = substitute(expr, {{a, b}}, nm);
  EXPECT_EQ(renamed, nm.mk_add(b, nm.mk_const(1, 8)));
  // Substituting a constant triggers folding.
  const NodeRef folded = substitute(expr, {{a, nm.mk_const(4, 8)}}, nm);
  EXPECT_EQ(folded, nm.mk_const(5, 8));
  // No-op substitution returns the identical node.
  EXPECT_EQ(substitute(expr, {}, nm), expr);
}

TEST(Substitute, CollectLeavesAndDagSize) {
  NodeManager nm;
  const NodeRef a = nm.mk_state("a", 8);
  const NodeRef b = nm.mk_input("b", 8);
  const NodeRef shared = nm.mk_add(a, b);
  const NodeRef expr = nm.mk_xor(shared, shared);  // folds to 0 actually
  const NodeRef expr2 = nm.mk_and(shared, shared); // folds to shared
  EXPECT_EQ(expr, nm.mk_const(0, 8));
  EXPECT_EQ(expr2, shared);
  const auto leaves = collect_leaves(nm.mk_or(shared, nm.mk_const(1, 8)));
  EXPECT_EQ(leaves.size(), 2u);
  EXPECT_GE(dag_size(shared), 3u);
}

TEST(Printer, RendersReadableInfix) {
  NodeManager nm;
  const NodeRef a = nm.mk_state("count1", 32);
  const NodeRef b = nm.mk_state("count2", 32);
  EXPECT_EQ(to_string(nm.mk_eq(a, b)), "(count1 == count2)");
  EXPECT_EQ(to_string(nm.mk_redand(a)), "&count1");
  EXPECT_EQ(to_string(nm.mk_extract(a, 3, 0)), "count1[3:0]");
  EXPECT_EQ(to_string(nm.mk_bit(a, 31)), "count1[31]");
  const std::string ite = to_string(nm.mk_ite(nm.mk_input("c", 1), a, b));
  EXPECT_NE(ite.find('?'), std::string::npos);
}

// --- structural hashing (the proof-cache key) --------------------------------

/// Two synchronized counters with an equality property; `salt` perturbs the
/// increment constant, `names` swaps in different identifiers.
TransitionSystem counters_system(std::uint64_t increment, bool renamed) {
  TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef a = ts.add_state(renamed ? "left" : "count1", 8);
  const NodeRef b = ts.add_state(renamed ? "right" : "count2", 8);
  const NodeRef tick = ts.add_input(renamed ? "en" : "tick", 1);
  const NodeRef step = nm.mk_const(increment, 8);
  ts.set_init(a, nm.mk_const(0, 8));
  ts.set_init(b, nm.mk_const(0, 8));
  ts.set_next(a, nm.mk_ite(tick, nm.mk_add(a, step), a));
  ts.set_next(b, nm.mk_ite(tick, nm.mk_add(b, step), b));
  ts.add_constraint(nm.mk_true());
  ts.add_property({renamed ? "match" : "equal", nm.mk_eq(a, b),
                   PropertyRole::Target, ""});
  return ts;
}

TEST(StructHash, AlphaEquivalentSystemsCollide) {
  TransitionSystem a = counters_system(1, false);
  TransitionSystem b = counters_system(1, true);
  EXPECT_EQ(struct_hash(a), struct_hash(b));
  StructHasher ha(a);
  StructHasher hb(b);
  EXPECT_EQ(ha.property_hash(a.property(0).expr), hb.property_hash(b.property(0).expr));
  EXPECT_EQ(ha.state_signatures(), hb.state_signatures());
}

TEST(StructHash, SemanticEditsChangeTheHash) {
  TransitionSystem base = counters_system(1, false);
  const std::uint64_t base_hash = struct_hash(base);

  // Different constant in the next-state function.
  EXPECT_NE(struct_hash(counters_system(2, false)), base_hash);

  // Different operator.
  TransitionSystem xored = counters_system(1, false);
  const StateVar& s0 = xored.states()[0];
  xored.set_next(s0.var, xored.nm().mk_xor(s0.var, xored.nm().mk_const(1, 8)));
  EXPECT_NE(struct_hash(xored), base_hash);

  // Different init.
  TransitionSystem shifted = counters_system(1, false);
  shifted.set_init(shifted.states()[0].var, shifted.nm().mk_const(1, 8));
  EXPECT_NE(struct_hash(shifted), base_hash);

  // An extra state.
  TransitionSystem wider = counters_system(1, false);
  const NodeRef extra = wider.add_state("extra", 1);
  wider.set_next(extra, extra);
  EXPECT_NE(struct_hash(wider), base_hash);
}

TEST(StructHash, StableAcrossCloneAndSerializeRoundTrip) {
  TransitionSystem ts = counters_system(3, false);
  const std::uint64_t original = struct_hash(ts);

  SystemClone clone(ts);
  EXPECT_EQ(struct_hash(clone.system()), original);

  TransitionSystem reloaded = deserialize(serialize(ts));
  EXPECT_EQ(struct_hash(reloaded), original);
}

TEST(StructHash, CommutativeOperandOrderDoesNotLeakCreationOrder) {
  // NodeManager sorts commutative operands by node id, which depends on
  // creation order. Create the shared constant before the input in one
  // manager and after it in the other, so the normalized child order of the
  // product differs — the structural hash must not see the difference.
  TransitionSystem a;
  const NodeRef xa = a.add_input("x", 8);
  const NodeRef ka = a.nm().mk_const(3, 8);
  const NodeRef pa = a.nm().mk_eq(a.nm().mk_mul(xa, ka), a.nm().mk_const(0, 8));

  TransitionSystem b;
  const NodeRef kb = b.nm().mk_const(3, 8);
  const NodeRef xb = b.add_input("x", 8);
  const NodeRef pb = b.nm().mk_eq(b.nm().mk_mul(xb, kb), b.nm().mk_const(0, 8));

  StructHasher ha(a);
  StructHasher hb(b);
  EXPECT_EQ(ha.property_hash(pa), hb.property_hash(pb));
}

TEST(StructHash, OrphanLeavesHashByNameNotIdentity) {
  // A leaf that is not declared in the system (e.g. an auxiliary variable a
  // lemma pass left behind) falls back to its name, so two managers agree.
  TransitionSystem a;
  TransitionSystem b;
  const NodeRef oa = a.nm().mk_input("aux$past", 4);
  const NodeRef ob = b.nm().mk_input("aux$past", 4);
  StructHasher ha(a);
  StructHasher hb(b);
  EXPECT_EQ(ha.node_hash(oa), hb.node_hash(ob));
  EXPECT_NE(ha.node_hash(oa), ha.node_hash(a.nm().mk_input("other", 4)));
}

TEST(StructHash, DiffCountsMatchedStatesByDeclarationIndex) {
  TransitionSystem base = counters_system(1, false);
  TransitionSystem edited = counters_system(1, false);
  const StateVar& s1 = edited.states()[1];
  edited.set_next(s1.var, edited.nm().mk_sub(s1.var, edited.nm().mk_const(1, 8)));

  const StructDiff diff = struct_diff(base, edited);
  EXPECT_EQ(diff.states_a, 2u);
  EXPECT_EQ(diff.states_b, 2u);
  EXPECT_EQ(diff.compatible_states, 2u);
  EXPECT_EQ(diff.matched_states, 1u);
  EXPECT_DOUBLE_EQ(diff.similarity(), 0.5);

  // The signature-vector overload (the proof-cache path) agrees.
  StructHasher hasher(base);
  const StructDiff from_sigs = struct_diff(hasher.state_signatures(), edited);
  EXPECT_EQ(from_sigs.matched_states, 1u);
  EXPECT_DOUBLE_EQ(from_sigs.similarity(), 0.5);

  // Identical systems are fully matched.
  EXPECT_DOUBLE_EQ(struct_diff(base, counters_system(1, true)).similarity(), 1.0);
}

// --- checkpoint / rollback ---------------------------------------------------

TEST(TransitionSystemMark, RollbackRestoresDeclarationsAndTransitions) {
  TransitionSystem ts = counters_system(1, false);
  const TransitionSystem::Mark mark = ts.mark();
  const std::uint64_t pristine_hash = struct_hash(ts);

  // Simulate lemma-pass residue: auxiliary state, new input, extra property,
  // constraint, signal, and a rewritten next function of an existing state.
  auto& nm = ts.nm();
  const NodeRef aux = ts.add_state("aux$past", 8);
  ts.set_init(aux, nm.mk_const(0, 8));
  ts.set_next(aux, ts.states()[0].var);
  ts.add_input("fresh_in", 1);
  ts.add_signal("probe", aux);
  ts.add_constraint(nm.mk_eq(aux, aux));
  ts.add_property({"candidate", nm.mk_true(), PropertyRole::Candidate, ""});
  ts.set_next(ts.states()[0].var, ts.states()[0].var);

  ts.rollback(mark);
  EXPECT_EQ(ts.states().size(), 2u);
  EXPECT_EQ(ts.inputs().size(), 1u);
  EXPECT_EQ(ts.constraints().size(), 1u);
  EXPECT_EQ(ts.num_properties(), 1u);
  EXPECT_EQ(ts.signals().size(), 0u);
  EXPECT_EQ(ts.lookup("aux$past"), nullptr);
  EXPECT_EQ(ts.lookup("fresh_in"), nullptr);
  EXPECT_EQ(struct_hash(ts), pristine_hash);
  ts.validate();

  // Idempotent.
  ts.rollback(mark);
  EXPECT_EQ(struct_hash(ts), pristine_hash);
}

TEST(TransitionSystemMark, ForeignMarkIsRejected) {
  TransitionSystem a = counters_system(1, false);
  TransitionSystem b = counters_system(2, false);
  const TransitionSystem::Mark mark = a.mark();
  EXPECT_THROW(b.rollback(mark), UsageError);

  // A mark taken after additions is not a prefix once they are rolled away.
  TransitionSystem c;
  const TransitionSystem::Mark empty = c.mark();
  const NodeRef s = c.add_state("s", 1);
  c.set_next(s, s);
  const TransitionSystem::Mark later = c.mark();
  c.rollback(empty);
  EXPECT_EQ(c.states().size(), 0u);
  EXPECT_THROW(c.rollback(later), UsageError);
}

TEST(Printer, DescribeListsSystemParts) {
  TransitionSystem ts;
  ts.set_name("demo");
  auto& nm = ts.nm();
  const NodeRef st = ts.add_state("reg", 4);
  ts.set_init(st, nm.mk_const(0, 4));
  ts.set_next(st, nm.mk_add(st, nm.mk_const(1, 4)));
  const std::string text = describe(ts);
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("reg"), std::string::npos);
  EXPECT_NE(text.find("init"), std::string::npos);
}

}  // namespace
}  // namespace genfv::ir
