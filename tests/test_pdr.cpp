/// IC3/PDR engine tests: verdicts on hand-built systems and registry
/// designs, counterexample reconstruction, cube generalization, lemma
/// seeding, inductive-invariant export (with an independent SAT check and an
/// SVA printer round-trip), and the uniform mc::Engine interface.

#include <gtest/gtest.h>

#include "designs/design.hpp"
#include "mc/engine.hpp"
#include "mc/kinduction.hpp"
#include "mc/pdr/cube.hpp"
#include "mc/pdr/frames.hpp"
#include "mc/pdr/obligation.hpp"
#include "mc/pdr/pdr.hpp"
#include "ir/printer.hpp"
#include "sva/compiler.hpp"
#include "sva/parser.hpp"
#include "util/status.hpp"

namespace genfv::mc::pdr {
namespace {

using ir::NodeRef;

/// Counter stepping by `stride`, width `width`, init 0.
ir::TransitionSystem stride_counter(unsigned width, std::uint64_t stride) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef c = ts.add_state("count", width);
  ts.set_init(c, nm.mk_const(0, width));
  ts.set_next(c, nm.mk_add(c, nm.mk_const(stride, width)));
  return ts;
}

/// One-hot rotator: x' = rotate-left(x), init x = 1.
ir::TransitionSystem walking_one(unsigned width) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef x = ts.add_state("x", width);
  ts.set_init(x, nm.mk_const(1, width));
  ts.set_next(x, nm.mk_concat(nm.mk_extract(x, width - 2, 0), nm.mk_bit(x, width - 1)));
  return ts;
}

/// Independent SAT check that conj(clauses ∪ lemmas) is an inductive
/// invariant implying `prop`.
testing::AssertionResult check_invariant(const ir::TransitionSystem& ts,
                                         const std::vector<NodeRef>& clauses,
                                         const std::vector<NodeRef>& lemmas,
                                         NodeRef prop) {
  auto nm = ts.nm_ptr();
  NodeRef inv = nm->mk_true();
  for (const NodeRef c : clauses) inv = nm->mk_and(inv, c);
  for (const NodeRef l : lemmas) inv = nm->mk_and(inv, l);
  {
    sat::Solver solver;
    Unroller unroller(ts, solver);
    unroller.assert_init();
    if (solver.solve({~unroller.lit_at(inv, 0)}) != sat::LBool::False) {
      return testing::AssertionFailure() << "an initial state escapes the invariant";
    }
  }
  sat::Solver solver;
  Unroller unroller(ts, solver);
  unroller.extend_to(1);
  unroller.assert_at(inv, 0);
  if (solver.solve({~unroller.lit_at(inv, 1)}) != sat::LBool::False) {
    return testing::AssertionFailure() << "the invariant is not inductive";
  }
  if (solver.solve({~unroller.lit_at(prop, 0)}) != sat::LBool::False) {
    return testing::AssertionFailure() << "the invariant does not imply the property";
  }
  return testing::AssertionSuccess();
}

// --- cube primitives ---------------------------------------------------------

TEST(PdrCube, SubsumptionAndCanonicalization) {
  Cube a{{0, 1, false}, {0, 0, true}};
  canonicalize(a);
  EXPECT_EQ(a[0], (StateLit{0, 0, true}));
  const Cube b{{0, 0, true}, {0, 1, false}, {1, 3, true}};
  EXPECT_TRUE(subsumes(a, b));
  EXPECT_FALSE(subsumes(b, a));
  EXPECT_TRUE(subsumes(a, a));
}

TEST(PdrCube, ClauseExprIsNegatedCube) {
  auto ts = stride_counter(4, 1);
  // Cube: count[0] == 1 ∧ count[2] == 0  →  clause: !count[0] | count[2].
  const Cube cube{{0, 0, false}, {0, 2, true}};
  const NodeRef clause = clause_expr(ts, cube);
  const NodeRef count = ts.lookup("count");
  auto& nm = ts.nm();
  const NodeRef expected =
      nm.mk_or(nm.mk_not(nm.mk_bit(count, 0)), nm.mk_bit(count, 2));
  EXPECT_EQ(clause, expected);  // hash-consing: structural equality
}

TEST(PdrFrames, DeltaEncodingAndSubsumption) {
  sat::Solver solver;
  const sat::Lit init_gate = sat::mk_lit(solver.new_var());
  FrameTrace frames(solver, init_gate);
  frames.push_level();
  frames.push_level();
  EXPECT_EQ(frames.frontier(), 2u);
  EXPECT_EQ(frames.assumptions(0).size(), 3u);
  EXPECT_EQ(frames.assumptions(2).size(), 1u);

  const Cube wide{{0, 0, false}, {0, 1, false}};
  const Cube narrow{{0, 0, false}};
  frames.add_blocked(wide, 1);
  EXPECT_TRUE(frames.is_blocked(wide, 1));
  EXPECT_FALSE(frames.is_blocked(wide, 2));
  // A stronger clause at a higher level subsumes the bookkeeping below.
  frames.add_blocked(narrow, 2);
  EXPECT_TRUE(frames.cubes_at(1).empty());
  EXPECT_EQ(frames.total_cubes(), 1u);
  EXPECT_TRUE(frames.is_blocked(wide, 2));
}

TEST(PdrObligations, LowestLevelFirst) {
  ObligationQueue queue;
  const std::size_t deep = queue.add({{}, 3, {}, {}, -1});
  const std::size_t shallow = queue.add({{}, 1, {}, {}, -1});
  queue.push(deep);
  queue.push(shallow);
  EXPECT_EQ(queue.pop(), shallow);
  EXPECT_EQ(queue.pop(), deep);
  EXPECT_TRUE(queue.empty());
}

// --- verdicts ----------------------------------------------------------------

TEST(PdrEngineTest, ProvesStrideCounterParity) {
  // count += 2 from 0: "count != 7" needs the discovered invariant
  // "count is even"; k-induction cannot prove this at any k.
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));

  PdrEngine engine(ts, {.max_frames = 16});
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());
  EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));

  KInductionEngine kind(ts, {.max_k = 16});
  EXPECT_EQ(kind.prove(prop).verdict, Verdict::Unknown);
}

TEST(PdrEngineTest, GeneralizationShrinksCubes) {
  // Without unsat-core generalization the parity proof would need to block
  // each of the 128 odd 8-bit values separately; with it, a handful of
  // short clauses suffice.
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));
  PdrEngine engine(ts, {.max_frames = 16});
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Proven);
  EXPECT_LE(result.invariant.size(), 8u);
}

TEST(PdrEngineTest, FalsifiedWithConsistentTrace) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(9, 4));

  PdrEngine engine(ts, {.max_frames = 32});
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_TRUE(result.cex->is_consistent());
  const auto violation = result.cex->first_violation(prop);
  ASSERT_TRUE(violation.has_value());
  // The deterministic counter admits exactly one execution: 10 frames.
  EXPECT_EQ(result.cex->size(), 10u);
  EXPECT_EQ(*violation, 9u);
  EXPECT_EQ(result.depth, result.cex->size() - 1);
}

TEST(PdrEngineTest, FalsifiedInInitialState) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(0, 4));
  PdrEngine engine(ts);
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  EXPECT_EQ(result.depth, 0u);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_EQ(result.cex->size(), 1u);
  EXPECT_TRUE(result.cex->first_violation(prop).has_value());
}

TEST(PdrEngineTest, UnknownWhenFramesExhausted) {
  // The unreachable two-hot value 3 requires excluding the whole rotation
  // orbit, one frame per orbit position — more than 3 frames.
  auto ts = walking_one(8);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("x"), nm.mk_const(3, 8));
  PdrEngine engine(ts, {.max_frames = 3});
  EXPECT_EQ(engine.prove(prop).verdict, Verdict::Unknown);
}

TEST(PdrEngineTest, UnknownOnObligationBudget) {
  auto ts = walking_one(8);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("x"), nm.mk_const(3, 8));
  PdrEngine engine(ts, {.max_frames = 64, .max_obligations = 2});
  EXPECT_EQ(engine.prove(prop).verdict, Verdict::Unknown);
}

TEST(PdrEngineTest, SeededLemmaUnlocksBoundedProof) {
  // With the one-hot lemma seeding every frame, the bad states are already
  // excluded and the proof closes within 3 frames; without it, PDR needs to
  // walk the whole orbit (see UnknownWhenFramesExhausted).
  auto ts = walking_one(8);
  auto& nm = ts.nm();
  const NodeRef x = ts.lookup("x");
  const NodeRef prop = nm.mk_ne(x, nm.mk_const(3, 8));
  const NodeRef onehot =
      nm.mk_and(nm.mk_eq(nm.mk_and(x, nm.mk_sub(x, nm.mk_const(1, 8))), nm.mk_const(0, 8)),
                nm.mk_ne(x, nm.mk_const(0, 8)));

  PdrOptions options;
  options.max_frames = 3;
  options.lemmas = {onehot};
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_TRUE(check_invariant(ts, result.invariant, options.lemmas, prop));
}

TEST(PdrEngineTest, ProveAllConjunction) {
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const NodeRef p1 = nm.mk_ne(count, nm.mk_const(7, 8));
  const NodeRef p2 = nm.mk_ne(count, nm.mk_const(5, 8));
  PdrEngine engine(ts, {.max_frames = 16});
  EXPECT_EQ(engine.prove_all({p1, p2}).verdict, Verdict::Proven);
}

TEST(PdrEngineTest, RejectsInputDependentInit) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef in = ts.add_input("i", 4);
  const NodeRef s = ts.add_state("s", 4);
  ts.set_init(s, in);
  ts.set_next(s, s);
  PdrEngine engine(ts);
  EXPECT_THROW(engine.prove(nm.mk_ne(s, nm.mk_const(3, 4))), UsageError);
}

// --- registry designs --------------------------------------------------------

TEST(PdrEngineTest, ProvesRegistryDesignsKInductionCannot) {
  // The headline capability: at the same step bound, PDR closes proofs that
  // k-induction reports Unknown on, because it discovers the helper
  // invariants the GenAI flow would otherwise have to mine.
  for (const char* name : {"sequencer", "token_ring"}) {
    auto task = designs::make_task(name);
    const mc::EngineOptions options{.max_steps = 8};

    auto kind = mc::make_engine(mc::EngineKind::KInduction, task.ts, options);
    EXPECT_EQ(kind->prove_all(task.target_exprs()).verdict, Verdict::Unknown) << name;

    auto pdr = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = pdr->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Proven) << name;
    ASSERT_FALSE(result.invariant.empty()) << name;

    auto nm = task.ts.nm_ptr();
    ir::NodeRef conj = nm->mk_true();
    for (const NodeRef t : task.target_exprs()) conj = nm->mk_and(conj, t);
    EXPECT_TRUE(check_invariant(task.ts, result.invariant, {}, conj)) << name;
  }
}

TEST(PdrEngineTest, InvariantRoundTripsThroughSvaPrinter) {
  // Exported invariant clauses print as SVA, re-parse, and re-compile to the
  // exact same hash-consed expressions — the bidirectional lemma exchange
  // the flows rely on.
  auto task = designs::make_task("sequencer");
  PdrEngine engine(task.ts, {.max_frames = 8});
  const PdrResult result = engine.prove_all(task.target_exprs());
  ASSERT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());
  for (const NodeRef clause : result.invariant) {
    const std::string sva = ir::to_string(clause);
    const auto parsed = sva::parse_property(sva);
    sva::PropertyCompiler compiler(task.ts);
    EXPECT_EQ(compiler.compile(parsed).expr, clause) << sva;
  }
}

// --- the uniform engine interface -------------------------------------------

TEST(EngineInterface, KindParsingAndNames) {
  EXPECT_EQ(engine_kind_from_string("bmc"), EngineKind::Bmc);
  EXPECT_EQ(engine_kind_from_string("kind"), EngineKind::KInduction);
  EXPECT_EQ(engine_kind_from_string("k-induction"), EngineKind::KInduction);
  EXPECT_EQ(engine_kind_from_string("pdr"), EngineKind::Pdr);
  EXPECT_EQ(engine_kind_from_string("ic3"), EngineKind::Pdr);
  EXPECT_FALSE(engine_kind_from_string("bdd").has_value());

  auto ts = stride_counter(4, 1);
  for (const EngineKind kind :
       {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr}) {
    auto engine = mc::make_engine(kind, ts);
    EXPECT_EQ(engine->kind(), kind);
    EXPECT_EQ(engine->name(), mc::to_string(kind));
  }
}

TEST(EngineInterface, AllEnginesAgreeOnFalsified) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(5, 4));
  for (const EngineKind kind :
       {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr}) {
    auto engine = mc::make_engine(kind, ts, {.max_steps = 16});
    const mc::EngineResult result = engine->prove(prop);
    EXPECT_EQ(result.verdict, Verdict::Falsified) << engine->name();
    ASSERT_TRUE(result.cex.has_value()) << engine->name();
    EXPECT_TRUE(result.cex->is_consistent()) << engine->name();
    EXPECT_TRUE(result.cex->first_violation(prop).has_value()) << engine->name();
    // Every engine reports effort through the same absorbed solver stats.
    EXPECT_GT(result.stats.sat_calls, 0u) << engine->name();
  }
}

TEST(EngineInterface, BmcNeverProves) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ule(nm.mk_const(0, 4), ts.lookup("count"));  // trivially true
  auto engine = mc::make_engine(EngineKind::Bmc, ts, {.max_steps = 4});
  EXPECT_EQ(engine->prove(prop).verdict, Verdict::Unknown);
}

}  // namespace
}  // namespace genfv::mc::pdr
