/// IC3/PDR engine tests: verdicts on hand-built systems and registry
/// designs, counterexample reconstruction, cube generalization, lemma
/// seeding, inductive-invariant export (with an independent SAT check and an
/// SVA printer round-trip), the sharded-query architecture (FrameDb epoch
/// sync, solver rebuilds, multi-worker verdict agreement, the pinned legacy
/// trajectory for workers == 1), ternary-simulation cube lifting,
/// candidate-lemma frame seeding under the may-proof discipline, and the
/// uniform mc::Engine interface.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "designs/design.hpp"
#include "mc/engine.hpp"
#include "mc/kinduction.hpp"
#include "mc/pdr/context.hpp"
#include "mc/pdr/cube.hpp"
#include "mc/pdr/frame_db.hpp"
#include "mc/pdr/obligation.hpp"
#include "mc/pdr/pdr.hpp"
#include "mc/pdr/ternary.hpp"
#include "ir/printer.hpp"
#include "sat/solver.hpp"
#include "sat/solver_pool.hpp"
#include "sim/interpreter.hpp"
#include "sva/compiler.hpp"
#include "sva/parser.hpp"
#include "util/status.hpp"
#include "util/telemetry.hpp"

namespace genfv::mc::pdr {
namespace {

using ir::NodeRef;

/// Counter stepping by `stride`, width `width`, init 0.
ir::TransitionSystem stride_counter(unsigned width, std::uint64_t stride) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef c = ts.add_state("count", width);
  ts.set_init(c, nm.mk_const(0, width));
  ts.set_next(c, nm.mk_add(c, nm.mk_const(stride, width)));
  return ts;
}

/// One-hot rotator: x' = rotate-left(x), init x = 1.
ir::TransitionSystem walking_one(unsigned width) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef x = ts.add_state("x", width);
  ts.set_init(x, nm.mk_const(1, width));
  ts.set_next(x, nm.mk_concat(nm.mk_extract(x, width - 2, 0), nm.mk_bit(x, width - 1)));
  return ts;
}

/// Independent SAT check that conj(clauses ∪ lemmas) is an inductive
/// invariant implying `prop`.
testing::AssertionResult check_invariant(const ir::TransitionSystem& ts,
                                         const std::vector<NodeRef>& clauses,
                                         const std::vector<NodeRef>& lemmas,
                                         NodeRef prop) {
  auto nm = ts.nm_ptr();
  NodeRef inv = nm->mk_true();
  for (const NodeRef c : clauses) inv = nm->mk_and(inv, c);
  for (const NodeRef l : lemmas) inv = nm->mk_and(inv, l);
  {
    sat::Solver solver;
    Unroller unroller(ts, solver);
    unroller.assert_init();
    if (solver.solve({~unroller.lit_at(inv, 0)}) != sat::LBool::False) {
      return testing::AssertionFailure() << "an initial state escapes the invariant";
    }
  }
  sat::Solver solver;
  Unroller unroller(ts, solver);
  unroller.extend_to(1);
  unroller.assert_at(inv, 0);
  if (solver.solve({~unroller.lit_at(inv, 1)}) != sat::LBool::False) {
    return testing::AssertionFailure() << "the invariant is not inductive";
  }
  if (solver.solve({~unroller.lit_at(prop, 0)}) != sat::LBool::False) {
    return testing::AssertionFailure() << "the invariant does not imply the property";
  }
  return testing::AssertionSuccess();
}

// --- cube primitives ---------------------------------------------------------

TEST(PdrCube, SubsumptionAndCanonicalization) {
  Cube a{{0, 1, false}, {0, 0, true}};
  canonicalize(a);
  EXPECT_EQ(a[0], (StateLit{0, 0, true}));
  const Cube b{{0, 0, true}, {0, 1, false}, {1, 3, true}};
  EXPECT_TRUE(subsumes(a, b));
  EXPECT_FALSE(subsumes(b, a));
  EXPECT_TRUE(subsumes(a, a));
}

TEST(PdrCube, ClauseExprIsNegatedCube) {
  auto ts = stride_counter(4, 1);
  // Cube: count[0] == 1 ∧ count[2] == 0  →  clause: !count[0] | count[2].
  const Cube cube{{0, 0, false}, {0, 2, true}};
  const NodeRef clause = clause_expr(ts, cube);
  const NodeRef count = ts.lookup("count");
  auto& nm = ts.nm();
  const NodeRef expected =
      nm.mk_or(nm.mk_not(nm.mk_bit(count, 0)), nm.mk_bit(count, 2));
  EXPECT_EQ(clause, expected);  // hash-consing: structural equality
}

TEST(PdrFrameDb, DeltaEncodingAndSubsumption) {
  FrameDb db;
  db.push_level();
  db.push_level();
  EXPECT_EQ(db.frontier(), 2u);
  EXPECT_EQ(db.levels(), 3u);

  const Cube wide{{0, 0, false}, {0, 1, false}};
  const Cube narrow{{0, 0, false}};
  db.add_blocked(wide, 1);
  EXPECT_TRUE(db.is_blocked(wide, 1));
  EXPECT_FALSE(db.is_blocked(wide, 2));
  // A stronger clause at a higher level subsumes the bookkeeping below.
  db.add_blocked(narrow, 2);
  EXPECT_TRUE(db.cubes_at(1).empty());
  EXPECT_EQ(db.total_cubes(), 1u);
  EXPECT_TRUE(db.is_blocked(wide, 2));
}

TEST(PdrFrameDb, JournalRecordsEveryMutation) {
  FrameDb db;
  EXPECT_EQ(db.epoch(), 0u);
  db.push_level();
  const Cube cube{{0, 0, false}};
  db.add_blocked(cube, 1);
  db.graduate(cube, 1);
  EXPECT_EQ(db.epoch(), 3u);

  std::vector<FrameDb::Event> events;
  EXPECT_EQ(db.events_since(0, &events), 3u);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FrameDb::Event::Kind::PushLevel);
  EXPECT_EQ(events[1].kind, FrameDb::Event::Kind::Block);
  EXPECT_EQ(events[1].cube, cube);
  EXPECT_EQ(events[1].level, 1u);
  EXPECT_EQ(events[2].kind, FrameDb::Event::Kind::Graduate);

  // Incremental replay from a mid-journal epoch sees only the tail.
  events.clear();
  EXPECT_EQ(db.events_since(2, &events), 3u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FrameDb::Event::Kind::Graduate);
}

TEST(PdrFrameDb, EraseOnGraduation) {
  FrameDb db;
  db.push_level();
  const Cube cube{{0, 1, true}};
  db.add_blocked(cube, 1);
  EXPECT_EQ(db.cubes_at(1).size(), 1u);
  EXPECT_TRUE(db.infinity().empty());

  db.graduate(cube, 1);
  // Graduation moves the cube out of the delta bookkeeping into F_∞; the
  // delta levels no longer claim it (mirrors re-assert it ungated instead).
  EXPECT_TRUE(db.cubes_at(1).empty());
  ASSERT_EQ(db.infinity().size(), 1u);
  EXPECT_EQ(db.infinity()[0], cube);
  EXPECT_EQ(db.total_cubes(), 0u);
  const FrameDb::Snapshot snapshot = db.snapshot();
  EXPECT_EQ(snapshot.infinity.size(), 1u);
  EXPECT_EQ(snapshot.epoch, db.epoch());
}

TEST(PdrFrameDb, EpochSyncIntoTwoIndependentContexts) {
  // Two query contexts mirror one database; a clause blocked through the
  // database must become visible to *both* solvers after their next sync —
  // the mechanism the sharded engine's workers rely on.
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_true();

  PdrOptions options;
  FrameDb db;
  sat::SolverPool pool;
  QueryContext a(ts, prop, {}, options, pool, db);
  QueryContext b(ts, prop, {}, options, pool, db);
  db.push_level();

  // count == 3, as a full 4-bit cube.
  const Cube cube{{0, 0, false}, {0, 1, false}, {0, 2, true}, {0, 3, true}};
  auto holds_at_frame0 = [&](QueryContext& ctx) {
    ctx.sync();
    std::vector<sat::Lit> assumptions = ctx.assumptions(1);
    for (const StateLit& l : cube) assumptions.push_back(ctx.cube_lit(0, l));
    return ctx.solver().solve(assumptions);
  };

  // Before blocking: both contexts can still reach count == 3 inside F_1.
  EXPECT_EQ(holds_at_frame0(a), sat::LBool::True);
  EXPECT_EQ(holds_at_frame0(b), sat::LBool::True);

  db.add_blocked(cube, 1);
  EXPECT_EQ(holds_at_frame0(a), sat::LBool::False);
  EXPECT_EQ(holds_at_frame0(b), sat::LBool::False);

  // Graduation strengthens every query, even without frame assumptions, and
  // a context constructed *after* the fact replays the full journal.
  db.graduate(cube, 1);
  QueryContext c(ts, prop, {}, options, pool, db);
  c.sync();
  std::vector<sat::Lit> assumptions;
  for (const StateLit& l : cube) assumptions.push_back(c.cube_lit(0, l));
  EXPECT_EQ(c.solver().solve(assumptions), sat::LBool::False);
}

TEST(PdrFrameDb, StrikesRetractCandidatesOnlyAtTheLimit) {
  FrameDb db;
  db.set_candidate_strikes(3);
  const Cube cube{{0, 0, false}};
  const auto id = db.seed_may(cube);
  ASSERT_TRUE(id.has_value());
  const std::uint64_t epoch_after_seed = db.epoch();

  // Two sub-limit strikes: candidate stays live, mirrors see nothing.
  EXPECT_FALSE(db.strike_may(*id));
  EXPECT_FALSE(db.strike_may(*id));
  EXPECT_EQ(db.may_clauses().size(), 1u);
  EXPECT_EQ(db.may_clauses()[0].strikes, 2u);
  EXPECT_EQ(db.epoch(), epoch_after_seed);
  EXPECT_EQ(db.may_retracted(), 0u);

  // The third strike retracts and journals a RetractMay for the mirrors.
  EXPECT_TRUE(db.strike_may(*id));
  EXPECT_TRUE(db.may_clauses().empty());
  EXPECT_EQ(db.may_retracted(), 1u);
  std::vector<FrameDb::Event> events;
  db.events_since(epoch_after_seed, &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FrameDb::Event::Kind::RetractMay);

  // Striking a retracted candidate is a no-op, and the cube stays refused.
  EXPECT_FALSE(db.strike_may(*id));
  EXPECT_FALSE(db.seed_may(cube).has_value());
}

TEST(PdrFrameDb, StrikeLimitFloorsAtOne) {
  FrameDb db;
  db.set_candidate_strikes(0);  // clamped to 1: first offense retracts
  const auto id = db.seed_may(Cube{{0, 1, true}});
  ASSERT_TRUE(id.has_value());
  EXPECT_TRUE(db.strike_may(*id));
  EXPECT_TRUE(db.may_clauses().empty());
}

TEST(PdrObligations, LowestLevelFirst) {
  ObligationQueue queue;
  const std::size_t deep = queue.add({{}, 3, {}, {}, -1});
  const std::size_t shallow = queue.add({{}, 1, {}, {}, -1});
  queue.push(deep);
  queue.push(shallow);
  EXPECT_EQ(queue.pop(), shallow);
  EXPECT_EQ(queue.pop(), deep);
  EXPECT_TRUE(queue.empty());
}

// --- verdicts ----------------------------------------------------------------

TEST(PdrEngineTest, ProvesStrideCounterParity) {
  // count += 2 from 0: "count != 7" needs the discovered invariant
  // "count is even"; k-induction cannot prove this at any k.
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));

  PdrEngine engine(ts, {.max_frames = 16});
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());
  EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));

  KInductionEngine kind(ts, {.max_k = 16});
  EXPECT_EQ(kind.prove(prop).verdict, Verdict::Unknown);
}

TEST(PdrEngineTest, GeneralizationShrinksCubes) {
  // Without unsat-core generalization the parity proof would need to block
  // each of the 128 odd 8-bit values separately; with it, a handful of
  // short clauses suffice.
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));
  PdrEngine engine(ts, {.max_frames = 16});
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Proven);
  EXPECT_LE(result.invariant.size(), 8u);
}

TEST(PdrEngineTest, FalsifiedWithConsistentTrace) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(9, 4));

  PdrEngine engine(ts, {.max_frames = 32});
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_TRUE(result.cex->is_consistent());
  const auto violation = result.cex->first_violation(prop);
  ASSERT_TRUE(violation.has_value());
  // The deterministic counter admits exactly one execution: 10 frames.
  EXPECT_EQ(result.cex->size(), 10u);
  EXPECT_EQ(*violation, 9u);
  EXPECT_EQ(result.depth, result.cex->size() - 1);
}

TEST(PdrEngineTest, FalsifiedInInitialState) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(0, 4));
  PdrEngine engine(ts);
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  EXPECT_EQ(result.depth, 0u);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_EQ(result.cex->size(), 1u);
  EXPECT_TRUE(result.cex->first_violation(prop).has_value());
}

TEST(PdrEngineTest, UnknownWhenFramesExhausted) {
  // The unreachable two-hot value 3 requires excluding the whole rotation
  // orbit, one frame per orbit position — more than 3 frames.
  auto ts = walking_one(8);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("x"), nm.mk_const(3, 8));
  PdrEngine engine(ts, {.max_frames = 3});
  EXPECT_EQ(engine.prove(prop).verdict, Verdict::Unknown);
}

TEST(PdrEngineTest, UnknownOnObligationBudget) {
  auto ts = walking_one(8);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("x"), nm.mk_const(3, 8));
  PdrEngine engine(ts, {.max_frames = 64, .max_obligations = 2});
  EXPECT_EQ(engine.prove(prop).verdict, Verdict::Unknown);
}

TEST(PdrEngineTest, SeededLemmaUnlocksBoundedProof) {
  // With the one-hot lemma seeding every frame, the bad states are already
  // excluded and the proof closes within 3 frames; without it, PDR needs to
  // walk the whole orbit (see UnknownWhenFramesExhausted).
  auto ts = walking_one(8);
  auto& nm = ts.nm();
  const NodeRef x = ts.lookup("x");
  const NodeRef prop = nm.mk_ne(x, nm.mk_const(3, 8));
  const NodeRef onehot =
      nm.mk_and(nm.mk_eq(nm.mk_and(x, nm.mk_sub(x, nm.mk_const(1, 8))), nm.mk_const(0, 8)),
                nm.mk_ne(x, nm.mk_const(0, 8)));

  PdrOptions options;
  options.max_frames = 3;
  options.lemmas = {onehot};
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_TRUE(check_invariant(ts, result.invariant, options.lemmas, prop));
}

TEST(PdrEngineTest, ProveAllConjunction) {
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const NodeRef p1 = nm.mk_ne(count, nm.mk_const(7, 8));
  const NodeRef p2 = nm.mk_ne(count, nm.mk_const(5, 8));
  PdrEngine engine(ts, {.max_frames = 16});
  EXPECT_EQ(engine.prove_all({p1, p2}).verdict, Verdict::Proven);
}

TEST(PdrEngineTest, RejectsInputDependentInit) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef in = ts.add_input("i", 4);
  const NodeRef s = ts.add_state("s", 4);
  ts.set_init(s, in);
  ts.set_next(s, s);
  PdrEngine engine(ts);
  EXPECT_THROW(engine.prove(nm.mk_ne(s, nm.mk_const(3, 4))), UsageError);
}

// --- registry designs --------------------------------------------------------

TEST(PdrEngineTest, ProvesRegistryDesignsKInductionCannot) {
  // The headline capability: at the same step bound, PDR closes proofs that
  // k-induction reports Unknown on, because it discovers the helper
  // invariants the GenAI flow would otherwise have to mine.
  for (const char* name : {"sequencer", "token_ring"}) {
    auto task = designs::make_task(name);
    const mc::EngineOptions options{.max_steps = 8};

    auto kind = mc::make_engine(mc::EngineKind::KInduction, task.ts, options);
    EXPECT_EQ(kind->prove_all(task.target_exprs()).verdict, Verdict::Unknown) << name;

    auto pdr = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = pdr->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Proven) << name;
    ASSERT_FALSE(result.invariant.empty()) << name;

    auto nm = task.ts.nm_ptr();
    ir::NodeRef conj = nm->mk_true();
    for (const NodeRef t : task.target_exprs()) conj = nm->mk_and(conj, t);
    EXPECT_TRUE(check_invariant(task.ts, result.invariant, {}, conj)) << name;
  }
}

TEST(PdrEngineTest, InvariantRoundTripsThroughSvaPrinter) {
  // Exported invariant clauses print as SVA, re-parse, and re-compile to the
  // exact same hash-consed expressions — the bidirectional lemma exchange
  // the flows rely on.
  auto task = designs::make_task("sequencer");
  PdrEngine engine(task.ts, {.max_frames = 8});
  const PdrResult result = engine.prove_all(task.target_exprs());
  ASSERT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());
  for (const NodeRef clause : result.invariant) {
    const std::string sva = ir::to_string(clause);
    const auto parsed = sva::parse_property(sva);
    sva::PropertyCompiler compiler(task.ts);
    EXPECT_EQ(compiler.compile(parsed).expr, clause) << sva;
  }
}

// --- the sharded-query architecture ------------------------------------------

/// Verdicts and frontier depths of the pre-refactor single-solver engine at
/// max_steps = 12, recorded design by design before the sharded-query
/// rewrite landed. `pdr_workers == 1` must reproduce them exactly — the
/// refactor re-expresses the same algorithm over FrameDb + QueryContext, so
/// any drift here means the query sequence changed.
struct LegacyExpectation {
  const char* design;
  Verdict verdict;
  std::size_t depth;
  bool slow;  ///< only checked when GENFV_SLOW_TESTS is set (minutes-long)
};
constexpr LegacyExpectation kLegacyRegistry[] = {
    {"sync_counters", Verdict::Unknown, 12, false},
    {"triple_counters", Verdict::Unknown, 12, false},
    {"gray_counter", Verdict::Unknown, 12, false},
    {"updown_pair", Verdict::Proven, 7, false},
    {"lfsr_pair", Verdict::Unknown, 12, false},
    {"lfsr16", Verdict::Unknown, 12, false},
    {"token_ring", Verdict::Proven, 5, false},
    {"sequencer", Verdict::Proven, 4, false},
    {"dual_accumulator", Verdict::Proven, 4, true},
    {"fifo_ctrl", Verdict::Unknown, 12, false},
    {"parity_codec", Verdict::Proven, 2, false},
    {"hamming74", Verdict::Proven, 2, false},
    {"secded84", Verdict::Proven, 2, false},
};

TEST(PdrSharding, SingleWorkerReproducesLegacyTrajectory) {
  const bool slow_ok = std::getenv("GENFV_SLOW_TESTS") != nullptr;
  for (const LegacyExpectation& expected : kLegacyRegistry) {
    if (expected.slow && !slow_ok) continue;
    auto task = designs::make_task(expected.design);
    mc::EngineOptions options;
    options.max_steps = 12;
    auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, expected.verdict) << expected.design;
    EXPECT_EQ(result.depth, expected.depth) << expected.design;
  }
}

TEST(PdrSharding, SingleWorkerIsDeterministicRunToRun) {
  for (const char* name : {"sequencer", "token_ring"}) {
    auto task = designs::make_task(name);
    mc::EngineOptions options;
    options.max_steps = 12;
    mc::EngineResult runs[2];
    for (mc::EngineResult& r : runs) {
      auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
      r = engine->prove_all(task.target_exprs());
    }
    EXPECT_EQ(runs[0].verdict, runs[1].verdict) << name;
    EXPECT_EQ(runs[0].depth, runs[1].depth) << name;
    EXPECT_EQ(runs[0].stats.sat_calls, runs[1].stats.sat_calls) << name;
    EXPECT_EQ(runs[0].stats.conflicts, runs[1].stats.conflicts) << name;
    EXPECT_EQ(runs[0].invariant.size(), runs[1].invariant.size()) << name;
  }
}

TEST(PdrSharding, AutoWorkersKeepsSmallDesignsSequential) {
  // pdr_workers == 0 resolves per design: sync_counters (the BENCH_PR5
  // sharding-regression case) sits under the node threshold and must stay
  // sequential on any machine; larger designs resolve to a hardware-capped
  // shard count that is always a legal worker count.
  auto small = designs::make_task("sync_counters");
  EXPECT_EQ(mc::auto_pdr_workers(small.ts), 1u);

  auto larger = designs::make_task("updown_pair");
  const std::size_t resolved = mc::auto_pdr_workers(larger.ts);
  EXPECT_GE(resolved, 1u);
  EXPECT_LE(resolved, 4u);

  // The adapter seam accepts the sentinel end to end: verdicts are worker-
  // invariant, so an auto run must agree with the pinned expectation.
  mc::EngineOptions options;
  options.max_steps = 12;
  options.pdr_workers = 0;
  auto engine = mc::make_engine(mc::EngineKind::Pdr, small.ts, options);
  EXPECT_EQ(engine->prove_all(small.target_exprs()).verdict, Verdict::Unknown);
}

TEST(PdrSharding, MultiWorkerAgreesOnRegistryVerdicts) {
  // workers > 1 perturbs the frame trajectory (SAT models differ across
  // interleavings) but can never flip a verdict; depths may shift.
  const bool slow_ok = std::getenv("GENFV_SLOW_TESTS") != nullptr;
  for (const LegacyExpectation& expected : kLegacyRegistry) {
    if (expected.slow && !slow_ok) continue;
    auto task = designs::make_task(expected.design);
    mc::EngineOptions options;
    options.max_steps = 12;
    options.pdr_workers = 4;
    auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, expected.verdict) << expected.design;
    if (result.verdict == Verdict::Proven) {
      ASSERT_FALSE(result.invariant.empty()) << expected.design;
      auto nm = task.ts.nm_ptr();
      ir::NodeRef conj = nm->mk_true();
      for (const NodeRef t : task.target_exprs()) conj = nm->mk_and(conj, t);
      EXPECT_TRUE(check_invariant(task.ts, result.invariant, {}, conj))
          << expected.design;
    }
  }
}

TEST(PdrSharding, MultiWorkerWithForcedRebuildsAgrees) {
  // Several workers crossing the gate limit rebuild their solvers
  // concurrently — the pool's retired-stats fold must be race-free (this
  // runs under TSan in CI) and verdicts must hold.
  auto task = designs::make_task("sequencer");
  mc::EngineOptions options;
  options.max_steps = 12;
  options.pdr_workers = 4;
  options.pdr_rebuild_gate_limit = 2;
  auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
  const mc::EngineResult result = engine->prove_all(task.target_exprs());
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_GT(result.stats.solver_rebuilds, 0u);
  EXPECT_GT(result.stats.retired_gates, 0u);
}

TEST(PdrSharding, MultiWorkerFalsifiesWithConsistentTrace) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(9, 4));
  PdrOptions options;
  options.max_frames = 32;
  options.workers = 4;
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_TRUE(result.cex->is_consistent());
  const auto violation = result.cex->first_violation(prop);
  ASSERT_TRUE(violation.has_value());
  // The deterministic counter admits exactly one execution: 10 frames —
  // whichever worker found the chain.
  EXPECT_EQ(result.cex->size(), 10u);
  EXPECT_EQ(*violation, 9u);
  EXPECT_EQ(result.depth, result.cex->size() - 1);
}

TEST(PdrSharding, MultiWorkerProvesWithCheckedInvariant) {
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));
  PdrOptions options;
  options.max_frames = 16;
  options.workers = 3;
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());
  EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));
}

TEST(PdrSharding, MultiWorkerTracingAttributesSpansAcrossThreads) {
  // Tracing enabled during a 4-worker proof (the PdrSharding.MultiWorker*
  // name keeps this under TSan in CI): spans must land in per-thread
  // buffers from more than one thread, cover both the pdr and sat layers,
  // and survive export with the shard workers' thread names intact.
  util::set_telemetry_level(util::TelemetryLevel::Tracing);
  util::trace_reset();
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));
  PdrOptions options;
  options.max_frames = 16;
  options.workers = 4;
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);

  const auto events = util::trace_snapshot();
  const std::string json = util::trace_to_json();
  const std::uint64_t dropped = util::trace_dropped_events();
  util::set_telemetry_level(util::TelemetryLevel::Off);
  util::trace_reset();

  EXPECT_EQ(result.verdict, Verdict::Proven);
  std::set<std::string> categories;
  std::set<int> threads;
  std::size_t shard_spans = 0;
  for (const auto& e : events) {
    categories.insert(e.category);
    threads.insert(e.thread);
    if (std::string(e.name) == "shard_worker") ++shard_spans;
  }
  EXPECT_TRUE(categories.count("pdr")) << "no pdr spans recorded";
  EXPECT_TRUE(categories.count("sat")) << "no sat spans recorded";
  EXPECT_GT(threads.size(), 1u) << "all spans landed on one thread";
  EXPECT_GT(shard_spans, 0u);
  EXPECT_EQ(dropped, 0u);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("pdr-worker-"), std::string::npos)
      << "worker thread names missing from the export";
}

// --- query-gate hygiene ------------------------------------------------------

TEST(PdrRebuild, GateLitterIsCountedInStats) {
  // sequencer's proof takes dozens of blocking queries (each retiring one
  // activation gate) and real CDCL conflicts, so all three hygiene counters
  // must show up in the engine-level stats.
  auto task = designs::make_task("sequencer");
  mc::EngineOptions options;
  options.max_steps = 12;
  auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
  const mc::EngineResult result = engine->prove_all(task.target_exprs());
  ASSERT_EQ(result.verdict, Verdict::Proven);
  EXPECT_GT(result.stats.retired_gates, 0u);
  EXPECT_GT(result.stats.learnt_clauses, 0u);
  EXPECT_EQ(result.stats.learnt_clauses, result.stats.conflicts);
  EXPECT_EQ(result.stats.solver_rebuilds, 0u);  // default: never rebuild
}

TEST(PdrRebuild, ForcedMidRunRebuildPreservesVerdicts) {
  // An aggressively small gate limit forces several in-place solver rebuilds
  // mid-run; the re-encoded solver must reach the same verdicts (models and
  // hence trajectories may differ — depth is not pinned here).
  {
    auto ts = stride_counter(8, 2);
    auto& nm = ts.nm();
    const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));
    PdrOptions options;
    options.max_frames = 16;
    options.rebuild_gate_limit = 1;  // rebuild after every retired gate
    PdrEngine engine(ts, options);
    const PdrResult result = engine.prove(prop);
    EXPECT_EQ(result.verdict, Verdict::Proven);
    EXPECT_GT(result.stats.solver_rebuilds, 0u);
    EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));
  }
  {
    auto ts = stride_counter(4, 1);
    auto& nm = ts.nm();
    const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(9, 4));
    PdrOptions options;
    options.max_frames = 32;
    options.rebuild_gate_limit = 1;
    PdrEngine engine(ts, options);
    const PdrResult result = engine.prove(prop);
    ASSERT_EQ(result.verdict, Verdict::Falsified);
    ASSERT_TRUE(result.cex.has_value());
    EXPECT_TRUE(result.cex->is_consistent());
    EXPECT_TRUE(result.cex->first_violation(prop).has_value());
  }
  {
    // Registry design: the proof still closes and the invariant checks out.
    auto task = designs::make_task("sequencer");
    mc::EngineOptions options;
    options.max_steps = 12;
    options.pdr_rebuild_gate_limit = 8;
    auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Proven);
    EXPECT_GT(result.stats.solver_rebuilds, 0u);
  }
}

// --- ternary-simulation cube lifting -----------------------------------------

TEST(PdrTernary, OperatorXPropagation) {
  using W = TernaryWord;
  const auto k = [](std::uint64_t v, unsigned w) { return W::constant(v, w); };
  const W x4 = W::unknown(4);

  // And: a known 0 dominates any X; known 1s survive only against known 1s.
  EXPECT_EQ(ternary_op(ir::Op::And, 4, 0, 0, {k(0b0101, 4), x4}, {4, 4}),
            (W{0b0000, 0b1010}));
  // Or: a known 1 dominates any X.
  EXPECT_EQ(ternary_op(ir::Op::Or, 4, 0, 0, {k(0b0101, 4), x4}, {4, 4}),
            (W{0b0101, 0b0101}));
  // Xor through an X is X.
  EXPECT_EQ(ternary_op(ir::Op::Xor, 4, 0, 0, {k(0b1111, 4), x4}, {4, 4}).known, 0u);
  // Not keeps knowledge bit for bit.
  EXPECT_EQ(ternary_op(ir::Op::Not, 4, 0, 0, {W{0b0001, 0b0011}}, {4}),
            (W{0b0010, 0b0011}));
  // Add: exact below the lowest unknown operand bit (carry prefix).
  EXPECT_EQ(ternary_op(ir::Op::Add, 4, 0, 0, {k(0b0011, 4), W{0b0001, 0b0111}}, {4, 4}),
            (W{0b0100, 0b0111}));
  // Eq decides false on any known differing bit, even with X elsewhere.
  EXPECT_EQ(ternary_op(ir::Op::Eq, 1, 0, 0, {W{0b0001, 0b0001}, k(0b0000, 4)}, {4, 4}),
            (W{0, 1}));
  // ...but cannot decide true without full knowledge.
  EXPECT_EQ(ternary_op(ir::Op::Eq, 1, 0, 0, {W{0b0001, 0b0001}, k(0b0001, 4)}, {4, 4}),
            W::unknown(1));
  // Ite with an agreeing bit under an unknown selector.
  EXPECT_EQ(ternary_op(ir::Op::Ite, 4, 0, 0,
                       {W::unknown(1), k(0b0110, 4), k(0b0010, 4)}, {1, 4, 4}),
            (W{0b0010, 0b1011}));
  // Reductions: RedOr fires on any known 1, RedAnd on any known 0.
  EXPECT_EQ(ternary_op(ir::Op::RedOr, 1, 0, 0, {W{0b0100, 0b0100}}, {4}), (W{1, 1}));
  EXPECT_EQ(ternary_op(ir::Op::RedAnd, 1, 0, 0, {W{0b0000, 0b0100}}, {4}), (W{0, 1}));
  // Unsigned comparison via bounds: [8,15] is never below [0,7].
  EXPECT_EQ(ternary_op(ir::Op::Ult, 1, 0, 0, {W{0b1000, 0b1000}, W{0b0000, 0b1000}},
                       {4, 4}),
            (W{0, 1}));
  // Fully-known operands defer to the exact evaluator.
  EXPECT_EQ(ternary_op(ir::Op::Mul, 4, 0, 0, {k(3, 4), k(5, 4)}, {4, 4}), k(15, 4));
}

TEST(PdrTernary, SimulatorPropagatesXThroughNextFunctions) {
  auto ts = stride_counter(4, 2);
  TernarySim sim(ts);
  sim.load({0b0101}, {});
  // Fully concrete: next = 0b0111, all bits known.
  EXPECT_EQ(sim.evaluate(ts.states()[0].next), TernaryWord::constant(0b0111, 4));
  // X-ing bit 3 leaves the low bits of count+2 forced (carry prefix), bit 3 X.
  sim.set_state_bit_unknown(0, 3);
  const TernaryWord next = sim.evaluate(ts.states()[0].next);
  EXPECT_EQ(next.known, 0b0111u);
  EXPECT_EQ(next.value, 0b0111u);
}

TEST(PdrTernary, LiftDropsIrrelevantStateBits) {
  // Two registers; the property only constrains `a`, so every `b` bit lifts.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef a = ts.add_state("a", 4);
  const NodeRef b = ts.add_state("b", 4);
  ts.set_init(a, nm.mk_const(0, 4));
  ts.set_init(b, nm.mk_const(0, 4));
  ts.set_next(a, a);
  ts.set_next(b, b);
  const NodeRef prop = nm.mk_ne(a, nm.mk_const(5, 4));

  TernarySim sim(ts);
  Obligation o;
  o.state_values = {5, 9};
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint32_t bit = 0; bit < 4; ++bit) {
      o.cube.push_back({s, bit, ((o.state_values[s] >> bit) & 1) == 0});
    }
  }
  const std::size_t dropped = lift_obligation(sim, ts, o, nullptr, prop);
  EXPECT_EQ(dropped, 4u);  // all of b
  ASSERT_EQ(o.cube.size(), 4u);
  for (const StateLit& l : o.cube) EXPECT_EQ(l.state, 0u);

  // Semantic contract: every concretization of the dropped bits still
  // violates the property.
  for (std::uint64_t bval : {0ULL, 3ULL, 15ULL}) {
    sim::Assignment env{{a, 5}, {b, bval}};
    EXPECT_EQ(sim::evaluate(prop, env), 0u);
  }

  // Predecessor shape: force the successor cube a' == 5 through next(a)=a.
  Obligation pred;
  pred.state_values = {5, 9};
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint32_t bit = 0; bit < 4; ++bit) {
      pred.cube.push_back({s, bit, ((pred.state_values[s] >> bit) & 1) == 0});
    }
  }
  Cube successor;
  for (std::uint32_t bit = 0; bit < 4; ++bit) {
    successor.push_back({0, bit, ((5u >> bit) & 1) == 0});
  }
  EXPECT_EQ(lift_obligation(sim, ts, pred, &successor, nullptr), 4u);
  for (const StateLit& l : pred.cube) EXPECT_EQ(l.state, 0u);
}

TEST(PdrTernary, LiftCountsIrrelevantInputBits) {
  // next(a) = a ignores the input entirely, so every input bit is provably
  // irrelevant to the bad state a == 5; the input pass counts all 4 while
  // the recorded concrete input values stay untouched (CEX re-simulation
  // depends on them).
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef a = ts.add_state("a", 4);
  (void)ts.add_input("i", 4);
  ts.set_init(a, nm.mk_const(0, 4));
  ts.set_next(a, a);
  const NodeRef prop = nm.mk_ne(a, nm.mk_const(5, 4));

  TernarySim sim(ts);
  Obligation o;
  o.state_values = {5};
  o.input_values = {9};
  for (std::uint32_t bit = 0; bit < 4; ++bit) {
    o.cube.push_back({0, bit, ((5u >> bit) & 1) == 0});
  }
  std::size_t lifted_inputs = 0;
  lift_obligation(sim, ts, o, nullptr, prop, &lifted_inputs);
  EXPECT_EQ(lifted_inputs, 4u);
  ASSERT_EQ(o.input_values.size(), 1u);
  EXPECT_EQ(o.input_values[0], 9u);  // concrete witness survives
}

TEST(PdrTernary, LiftKeepsInputBitsThatForceTheSuccessor) {
  // next(a) = i and next(b) = b: the successor literal a' == 5 is forced
  // *only* by the input bits (none may lift), while b' == 2 is forced only
  // by b's state bits — so all of a's state bits drop and all of b's stay.
  // The split proves the input pass probes forcing, not state relevance.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef a = ts.add_state("a", 4);
  const NodeRef b = ts.add_state("b", 4);
  const NodeRef i = ts.add_input("i", 4);
  ts.set_init(a, nm.mk_const(0, 4));
  ts.set_init(b, nm.mk_const(0, 4));
  ts.set_next(a, i);
  ts.set_next(b, b);

  TernarySim sim(ts);
  Obligation pred;
  pred.state_values = {3, 2};
  pred.input_values = {5};
  for (std::uint32_t s = 0; s < 2; ++s) {
    for (std::uint32_t bit = 0; bit < 4; ++bit) {
      pred.cube.push_back({s, bit, ((pred.state_values[s] >> bit) & 1) == 0});
    }
  }
  Cube successor;
  for (std::uint32_t bit = 0; bit < 4; ++bit) {
    successor.push_back({0, bit, ((5u >> bit) & 1) == 0});
    successor.push_back({1, bit, ((2u >> bit) & 1) == 0});
  }
  std::size_t lifted_inputs = 0;
  const std::size_t dropped =
      lift_obligation(sim, ts, pred, &successor, nullptr, &lifted_inputs);
  EXPECT_EQ(dropped, 4u);  // all of a's state bits
  EXPECT_EQ(lifted_inputs, 0u);
  for (const StateLit& l : pred.cube) EXPECT_EQ(l.state, 1u);
  EXPECT_EQ(pred.input_values[0], 5u);
}

TEST(PdrTernary, LiftRespectsEnvironmentConstraints) {
  // The constraint ties `b` to the inputs-free expression b == 3; lifting
  // must keep enough of `b` to keep the constraint forced.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef a = ts.add_state("a", 2);
  const NodeRef b = ts.add_state("b", 2);
  ts.set_init(a, nm.mk_const(0, 2));
  ts.set_init(b, nm.mk_const(3, 2));
  ts.set_next(a, a);
  ts.set_next(b, b);
  ts.add_constraint(nm.mk_eq(b, nm.mk_const(3, 2)));
  const NodeRef prop = nm.mk_ne(a, nm.mk_const(1, 2));

  TernarySim sim(ts);
  Obligation o;
  o.state_values = {1, 3};
  o.cube = {{0, 0, false}, {0, 1, true}, {1, 0, false}, {1, 1, false}};
  lift_obligation(sim, ts, o, nullptr, prop);
  // a's bits stay (property), b's bits stay (constraint forcing needs them).
  EXPECT_EQ(o.cube.size(), 4u);
}

TEST(PdrTernary, FalsifiedWithConsistentTraceUnderLifting) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(9, 4));
  PdrOptions options;
  options.max_frames = 32;
  options.ternary_lifting = true;
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_TRUE(result.cex->is_consistent());
  const auto violation = result.cex->first_violation(prop);
  ASSERT_TRUE(violation.has_value());
  // The deterministic counter admits exactly one execution, lifted or not.
  EXPECT_EQ(result.cex->size(), 10u);
  EXPECT_EQ(*violation, 9u);
}

TEST(PdrTernary, RegistryVerdictsAgreeWithLifting) {
  // Lifting perturbs the frame trajectory but never a verdict; proofs keep
  // exporting independently-checked invariants and lifted_bits shows up.
  const bool slow_ok = std::getenv("GENFV_SLOW_TESTS") != nullptr;
  std::uint64_t total_lifted = 0;
  for (const LegacyExpectation& expected : kLegacyRegistry) {
    if (expected.slow && !slow_ok) continue;
    auto task = designs::make_task(expected.design);
    mc::EngineOptions options;
    options.max_steps = 12;
    options.pdr_ternary_lifting = true;
    auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, expected.verdict) << expected.design;
    total_lifted += result.stats.lifted_bits;
    if (result.verdict == Verdict::Proven) {
      ASSERT_FALSE(result.invariant.empty()) << expected.design;
      auto nm = task.ts.nm_ptr();
      ir::NodeRef conj = nm->mk_true();
      for (const NodeRef t : task.target_exprs()) conj = nm->mk_and(conj, t);
      EXPECT_TRUE(check_invariant(task.ts, result.invariant, {}, conj))
          << expected.design;
    }
  }
  EXPECT_GT(total_lifted, 0u);  // the registry is not lifting-proof
}

// --- candidate-lemma frame seeding -------------------------------------------

TEST(PdrFrameDb, MayClauseLifecycleAndJournal) {
  FrameDb db;
  db.push_level();
  const Cube c1{{0, 0, false}};
  const Cube c2{{0, 1, true}};
  const auto id1 = db.seed_may(c1);
  const auto id2 = db.seed_may(c2);
  ASSERT_TRUE(id1.has_value());
  ASSERT_TRUE(id2.has_value());
  EXPECT_FALSE(db.seed_may(c1).has_value());  // duplicate cube rejected
  EXPECT_EQ(db.may_clauses().size(), 2u);
  EXPECT_EQ(db.may_seeded(), 2u);

  EXPECT_TRUE(db.retract_may(*id1));
  EXPECT_FALSE(db.retract_may(*id1));          // idempotent
  EXPECT_FALSE(db.seed_may(c1).has_value());   // refuted stays refuted
  EXPECT_TRUE(db.graduate_may(*id2));
  EXPECT_TRUE(db.may_clauses().empty());
  EXPECT_EQ(db.may_retracted(), 1u);
  EXPECT_EQ(db.may_graduated(), 1u);

  std::vector<FrameDb::Event> events;
  db.events_since(0, &events);
  ASSERT_EQ(events.size(), 5u);  // PushLevel, 2x SeedMay, 2x RetractMay
  EXPECT_EQ(events[1].kind, FrameDb::Event::Kind::SeedMay);
  EXPECT_EQ(events[1].cube, c1);
  EXPECT_EQ(events[1].level, *id1);
  EXPECT_EQ(events[3].kind, FrameDb::Event::Kind::RetractMay);
  EXPECT_EQ(events[3].level, *id1);
  EXPECT_EQ(events[4].level, *id2);

  // The snapshot used by solver rebuilds carries only live candidates.
  const Cube c3{{1, 2, false}};
  db.seed_may(c3);
  const FrameDb::Snapshot snapshot = db.snapshot();
  ASSERT_EQ(snapshot.may.size(), 1u);
  EXPECT_EQ(snapshot.may[0].cube, c3);
}

TEST(PdrCube, ExchangeKeyIsSharedBetweenCubesAndMailboxClauses) {
  // The FrameDb's may-clause dedupe and the mailbox AbsorbFilter must key
  // the same fact identically, whichever lit struct carries it.
  const Cube cube{{2, 5, true}, {0, 1, false}};
  mc::ExchangedClause clause;
  clause.level = 7;
  for (const StateLit& l : cube) clause.lits.push_back({l.state, l.bit, l.negated});
  EXPECT_EQ(mc::exchange_key(cube, 7), mc::exchange_key(clause));
  EXPECT_NE(mc::exchange_key(cube, 7), mc::exchange_key(cube, 8));
}

TEST(PdrCube, CubeOfClauseRoundTripsAndRejectsNonClauses) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const Cube cube{{0, 0, false}, {0, 2, true}};
  const auto round = cube_of_clause(ts, clause_expr(ts, cube));
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(*round, cube);

  // Single-literal clauses in both polarities.
  EXPECT_EQ(cube_of_clause(ts, nm.mk_not(nm.mk_bit(count, 1))), (Cube{{0, 1, false}}));
  EXPECT_EQ(cube_of_clause(ts, nm.mk_bit(count, 1)), (Cube{{0, 1, true}}));

  // Non-clause shapes are rejected, not approximated.
  EXPECT_FALSE(cube_of_clause(ts, nm.mk_eq(count, nm.mk_const(3, 4))).has_value());
  EXPECT_FALSE(cube_of_clause(ts, nm.mk_and(nm.mk_bit(count, 0), nm.mk_bit(count, 1)))
                   .has_value());
  // Tautology: x | !x.
  EXPECT_FALSE(cube_of_clause(
                   ts, nm.mk_or(nm.mk_bit(count, 0), nm.mk_not(nm.mk_bit(count, 0))))
                   .has_value());
}

TEST(PdrSeeding, CorrectCandidateGraduatesAndSpeedsTheProof) {
  // "count is even" as the clause !count[0] — true and inductive, but
  // *unproven* here: it must graduate through the may-proof pass before it
  // may do any real work.
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const NodeRef prop = nm.mk_ne(count, nm.mk_const(7, 8));

  PdrOptions options;
  options.max_frames = 16;
  options.seed_candidates = true;
  options.candidate_lemmas = {nm.mk_not(nm.mk_bit(count, 0))};
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_EQ(result.stats.candidates_seeded, 1u);
  EXPECT_EQ(result.stats.candidates_graduated, 1u);
  EXPECT_EQ(result.stats.candidates_retracted, 0u);
  // The certificate must stand on its own — no candidate is ever part of it
  // without a clean graduation proof.
  EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));
}

TEST(PdrSeeding, InitRefutedCandidateIsRetractedAtTheGate) {
  // "count[0] is always 1" is violated by the initial state itself; the
  // may-proof pass retracts it before it can touch any query again.
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const NodeRef prop = nm.mk_ne(count, nm.mk_const(7, 8));

  PdrOptions options;
  options.max_frames = 16;
  options.seed_candidates = true;
  options.candidate_lemmas = {nm.mk_bit(count, 0)};  // clause count[0]
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_EQ(result.stats.candidates_seeded, 1u);
  EXPECT_EQ(result.stats.candidates_graduated, 0u);
  EXPECT_EQ(result.stats.candidates_retracted, 1u);
  EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));
}

TEST(PdrSeeding, SpuriousObligationRetractsTheImplicatedCandidate) {
  // "count[0] is always 0" passes initiation (init = 0) but is wrong from
  // step 1 on a stride-1 counter. It masks the odd states every
  // counterexample chain must pass through, producing may-contaminated
  // "blocked" answers whose clean re-runs expose — and retract — it. The
  // verdict and the reconstructed trace must come out untouched.
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const NodeRef prop = nm.mk_ne(count, nm.mk_const(9, 4));

  PdrOptions options;
  options.max_frames = 32;
  options.seed_candidates = true;
  options.candidate_lemmas = {nm.mk_not(nm.mk_bit(count, 0))};
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  EXPECT_GE(result.stats.candidates_retracted, 1u);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_TRUE(result.cex->is_consistent());
  EXPECT_EQ(result.cex->size(), 10u);
  EXPECT_TRUE(result.cex->first_violation(prop).has_value());
}

TEST(PdrSeeding, WrongCandidateNeverCorruptsTheInvariant) {
  // "count[1] is always 0" passes initiation but is false (2 is reachable).
  // Whatever SAT work it costs, the exported certificate must still be a
  // standalone inductive invariant — cross-checked independently.
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const NodeRef prop = nm.mk_ne(count, nm.mk_const(7, 8));

  PdrOptions options;
  options.max_frames = 16;
  options.seed_candidates = true;
  options.candidate_lemmas = {nm.mk_not(nm.mk_bit(count, 1))};
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());
  EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));
  // The wrong clause cannot be among the exported facts.
  const NodeRef wrong = nm.mk_not(nm.mk_bit(count, 1));
  for (const NodeRef clause : result.invariant) EXPECT_NE(clause, wrong);
}

TEST(PdrSeeding, NonClauseCandidatesAreSkipped) {
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const NodeRef prop = nm.mk_ne(count, nm.mk_const(7, 8));

  PdrOptions options;
  options.max_frames = 16;
  options.seed_candidates = true;
  // An equality is no clause over state bits; it must be skipped, not
  // mangled into one.
  options.candidate_lemmas = {nm.mk_eq(count, nm.mk_const(0, 8))};
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_EQ(result.stats.candidates_seeded, 0u);
}

TEST(PdrSeeding, MailboxFeedsInfinityAndCandidates) {
  // A racing publisher's proven clause joins F_∞ directly; its level-tagged
  // clause only ever enters as a may candidate. Both count as absorbed.
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const NodeRef prop = nm.mk_ne(count, nm.mk_const(7, 8));

  auto mailbox = std::make_shared<LemmaMailbox>(2);
  mc::ExchangedClause proven;
  proven.lits = {{0, 0, false}};  // clause !count[0], a true invariant
  proven.level = kExchangeProvenLevel;
  mc::ExchangedClause bounded;
  bounded.lits = {{0, 2, false}};  // clause !count[2]: true only within 1 step
  bounded.level = 1;
  // Batch publish, as push_to_infinity does for jointly-inductive sets.
  mailbox->publish_batch(1, {proven, bounded});
  EXPECT_EQ(mailbox->published_by(1), 2u);

  PdrOptions options;
  options.max_frames = 16;
  options.seed_candidates = true;
  options.exchange = mailbox;
  options.exchange_slot = 0;
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_GE(mailbox->absorbed_by(0), 2u);
  EXPECT_EQ(result.stats.candidates_seeded, 1u);  // only the bounded clause
  EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));
}

TEST(PdrSeeding, EngineInterfaceThreadsCandidateOptions) {
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const NodeRef prop = nm.mk_ne(count, nm.mk_const(7, 8));
  mc::EngineOptions options;
  options.max_steps = 16;
  options.pdr_ternary_lifting = true;
  options.pdr_seed_candidates = true;
  options.pdr_candidate_lemmas = {nm.mk_not(nm.mk_bit(count, 0))};
  auto engine = mc::make_engine(mc::EngineKind::Pdr, ts, options);
  const mc::EngineResult result = engine->prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_EQ(result.stats.candidates_seeded, 1u);
  EXPECT_EQ(result.stats.candidates_graduated, 1u);
}

TEST(PdrSharding, MultiWorkerWithLiftingAndSeedingAgrees) {
  // The full registry with both new knobs on and a deliberately mixed
  // candidate diet (one clause per polarity of the first state bit: at most
  // one can be true; the initiation filter and spurious-obligation
  // retraction must sort them out on every design). Runs under TSan in CI —
  // may retraction and lifting are per-worker paths over the shared FrameDb.
  const bool slow_ok = std::getenv("GENFV_SLOW_TESTS") != nullptr;
  for (const LegacyExpectation& expected : kLegacyRegistry) {
    if (expected.slow && !slow_ok) continue;
    auto task = designs::make_task(expected.design);
    auto nm = task.ts.nm_ptr();
    const NodeRef first = task.ts.states().front().var;
    mc::EngineOptions options;
    options.max_steps = 12;
    options.pdr_workers = 4;
    options.pdr_ternary_lifting = true;
    options.pdr_seed_candidates = true;
    options.pdr_candidate_lemmas = {nm->mk_bit(first, 0),
                                    nm->mk_not(nm->mk_bit(first, 0))};
    auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, expected.verdict) << expected.design;
    if (result.verdict == Verdict::Proven) {
      ASSERT_FALSE(result.invariant.empty()) << expected.design;
      ir::NodeRef conj = nm->mk_true();
      for (const NodeRef t : task.target_exprs()) conj = nm->mk_and(conj, t);
      EXPECT_TRUE(check_invariant(task.ts, result.invariant, {}, conj))
          << expected.design;
    }
  }
}

// --- the uniform engine interface -------------------------------------------

TEST(EngineInterface, KindParsingAndNames) {
  EXPECT_EQ(engine_kind_from_string("bmc"), EngineKind::Bmc);
  EXPECT_EQ(engine_kind_from_string("kind"), EngineKind::KInduction);
  EXPECT_EQ(engine_kind_from_string("k-induction"), EngineKind::KInduction);
  EXPECT_EQ(engine_kind_from_string("pdr"), EngineKind::Pdr);
  EXPECT_EQ(engine_kind_from_string("ic3"), EngineKind::Pdr);
  EXPECT_FALSE(engine_kind_from_string("bdd").has_value());

  auto ts = stride_counter(4, 1);
  for (const EngineKind kind :
       {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr}) {
    auto engine = mc::make_engine(kind, ts);
    EXPECT_EQ(engine->kind(), kind);
    EXPECT_EQ(engine->name(), mc::to_string(kind));
  }
}

TEST(EngineInterface, AllEnginesAgreeOnFalsified) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(5, 4));
  for (const EngineKind kind :
       {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr}) {
    auto engine = mc::make_engine(kind, ts, {.max_steps = 16});
    const mc::EngineResult result = engine->prove(prop);
    EXPECT_EQ(result.verdict, Verdict::Falsified) << engine->name();
    ASSERT_TRUE(result.cex.has_value()) << engine->name();
    EXPECT_TRUE(result.cex->is_consistent()) << engine->name();
    EXPECT_TRUE(result.cex->first_violation(prop).has_value()) << engine->name();
    // Every engine reports effort through the same absorbed solver stats.
    EXPECT_GT(result.stats.sat_calls, 0u) << engine->name();
  }
}

TEST(EngineInterface, BmcNeverProves) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ule(nm.mk_const(0, 4), ts.lookup("count"));  // trivially true
  auto engine = mc::make_engine(EngineKind::Bmc, ts, {.max_steps = 4});
  EXPECT_EQ(engine->prove(prop).verdict, Verdict::Unknown);
}

}  // namespace
}  // namespace genfv::mc::pdr
