/// IC3/PDR engine tests: verdicts on hand-built systems and registry
/// designs, counterexample reconstruction, cube generalization, lemma
/// seeding, inductive-invariant export (with an independent SAT check and an
/// SVA printer round-trip), the sharded-query architecture (FrameDb epoch
/// sync, solver rebuilds, multi-worker verdict agreement, the pinned legacy
/// trajectory for workers == 1), and the uniform mc::Engine interface.

#include <gtest/gtest.h>

#include <cstdlib>

#include "designs/design.hpp"
#include "mc/engine.hpp"
#include "mc/kinduction.hpp"
#include "mc/pdr/context.hpp"
#include "mc/pdr/cube.hpp"
#include "mc/pdr/frame_db.hpp"
#include "mc/pdr/obligation.hpp"
#include "mc/pdr/pdr.hpp"
#include "ir/printer.hpp"
#include "sat/solver_pool.hpp"
#include "sva/compiler.hpp"
#include "sva/parser.hpp"
#include "util/status.hpp"

namespace genfv::mc::pdr {
namespace {

using ir::NodeRef;

/// Counter stepping by `stride`, width `width`, init 0.
ir::TransitionSystem stride_counter(unsigned width, std::uint64_t stride) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef c = ts.add_state("count", width);
  ts.set_init(c, nm.mk_const(0, width));
  ts.set_next(c, nm.mk_add(c, nm.mk_const(stride, width)));
  return ts;
}

/// One-hot rotator: x' = rotate-left(x), init x = 1.
ir::TransitionSystem walking_one(unsigned width) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef x = ts.add_state("x", width);
  ts.set_init(x, nm.mk_const(1, width));
  ts.set_next(x, nm.mk_concat(nm.mk_extract(x, width - 2, 0), nm.mk_bit(x, width - 1)));
  return ts;
}

/// Independent SAT check that conj(clauses ∪ lemmas) is an inductive
/// invariant implying `prop`.
testing::AssertionResult check_invariant(const ir::TransitionSystem& ts,
                                         const std::vector<NodeRef>& clauses,
                                         const std::vector<NodeRef>& lemmas,
                                         NodeRef prop) {
  auto nm = ts.nm_ptr();
  NodeRef inv = nm->mk_true();
  for (const NodeRef c : clauses) inv = nm->mk_and(inv, c);
  for (const NodeRef l : lemmas) inv = nm->mk_and(inv, l);
  {
    sat::Solver solver;
    Unroller unroller(ts, solver);
    unroller.assert_init();
    if (solver.solve({~unroller.lit_at(inv, 0)}) != sat::LBool::False) {
      return testing::AssertionFailure() << "an initial state escapes the invariant";
    }
  }
  sat::Solver solver;
  Unroller unroller(ts, solver);
  unroller.extend_to(1);
  unroller.assert_at(inv, 0);
  if (solver.solve({~unroller.lit_at(inv, 1)}) != sat::LBool::False) {
    return testing::AssertionFailure() << "the invariant is not inductive";
  }
  if (solver.solve({~unroller.lit_at(prop, 0)}) != sat::LBool::False) {
    return testing::AssertionFailure() << "the invariant does not imply the property";
  }
  return testing::AssertionSuccess();
}

// --- cube primitives ---------------------------------------------------------

TEST(PdrCube, SubsumptionAndCanonicalization) {
  Cube a{{0, 1, false}, {0, 0, true}};
  canonicalize(a);
  EXPECT_EQ(a[0], (StateLit{0, 0, true}));
  const Cube b{{0, 0, true}, {0, 1, false}, {1, 3, true}};
  EXPECT_TRUE(subsumes(a, b));
  EXPECT_FALSE(subsumes(b, a));
  EXPECT_TRUE(subsumes(a, a));
}

TEST(PdrCube, ClauseExprIsNegatedCube) {
  auto ts = stride_counter(4, 1);
  // Cube: count[0] == 1 ∧ count[2] == 0  →  clause: !count[0] | count[2].
  const Cube cube{{0, 0, false}, {0, 2, true}};
  const NodeRef clause = clause_expr(ts, cube);
  const NodeRef count = ts.lookup("count");
  auto& nm = ts.nm();
  const NodeRef expected =
      nm.mk_or(nm.mk_not(nm.mk_bit(count, 0)), nm.mk_bit(count, 2));
  EXPECT_EQ(clause, expected);  // hash-consing: structural equality
}

TEST(PdrFrameDb, DeltaEncodingAndSubsumption) {
  FrameDb db;
  db.push_level();
  db.push_level();
  EXPECT_EQ(db.frontier(), 2u);
  EXPECT_EQ(db.levels(), 3u);

  const Cube wide{{0, 0, false}, {0, 1, false}};
  const Cube narrow{{0, 0, false}};
  db.add_blocked(wide, 1);
  EXPECT_TRUE(db.is_blocked(wide, 1));
  EXPECT_FALSE(db.is_blocked(wide, 2));
  // A stronger clause at a higher level subsumes the bookkeeping below.
  db.add_blocked(narrow, 2);
  EXPECT_TRUE(db.cubes_at(1).empty());
  EXPECT_EQ(db.total_cubes(), 1u);
  EXPECT_TRUE(db.is_blocked(wide, 2));
}

TEST(PdrFrameDb, JournalRecordsEveryMutation) {
  FrameDb db;
  EXPECT_EQ(db.epoch(), 0u);
  db.push_level();
  const Cube cube{{0, 0, false}};
  db.add_blocked(cube, 1);
  db.graduate(cube, 1);
  EXPECT_EQ(db.epoch(), 3u);

  std::vector<FrameDb::Event> events;
  EXPECT_EQ(db.events_since(0, &events), 3u);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, FrameDb::Event::Kind::PushLevel);
  EXPECT_EQ(events[1].kind, FrameDb::Event::Kind::Block);
  EXPECT_EQ(events[1].cube, cube);
  EXPECT_EQ(events[1].level, 1u);
  EXPECT_EQ(events[2].kind, FrameDb::Event::Kind::Graduate);

  // Incremental replay from a mid-journal epoch sees only the tail.
  events.clear();
  EXPECT_EQ(db.events_since(2, &events), 3u);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FrameDb::Event::Kind::Graduate);
}

TEST(PdrFrameDb, EraseOnGraduation) {
  FrameDb db;
  db.push_level();
  const Cube cube{{0, 1, true}};
  db.add_blocked(cube, 1);
  EXPECT_EQ(db.cubes_at(1).size(), 1u);
  EXPECT_TRUE(db.infinity().empty());

  db.graduate(cube, 1);
  // Graduation moves the cube out of the delta bookkeeping into F_∞; the
  // delta levels no longer claim it (mirrors re-assert it ungated instead).
  EXPECT_TRUE(db.cubes_at(1).empty());
  ASSERT_EQ(db.infinity().size(), 1u);
  EXPECT_EQ(db.infinity()[0], cube);
  EXPECT_EQ(db.total_cubes(), 0u);
  const FrameDb::Snapshot snapshot = db.snapshot();
  EXPECT_EQ(snapshot.infinity.size(), 1u);
  EXPECT_EQ(snapshot.epoch, db.epoch());
}

TEST(PdrFrameDb, EpochSyncIntoTwoIndependentContexts) {
  // Two query contexts mirror one database; a clause blocked through the
  // database must become visible to *both* solvers after their next sync —
  // the mechanism the sharded engine's workers rely on.
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_true();

  PdrOptions options;
  FrameDb db;
  sat::SolverPool pool;
  QueryContext a(ts, prop, {}, options, pool, db);
  QueryContext b(ts, prop, {}, options, pool, db);
  db.push_level();

  // count == 3, as a full 4-bit cube.
  const Cube cube{{0, 0, false}, {0, 1, false}, {0, 2, true}, {0, 3, true}};
  auto holds_at_frame0 = [&](QueryContext& ctx) {
    ctx.sync();
    std::vector<sat::Lit> assumptions = ctx.assumptions(1);
    for (const StateLit& l : cube) assumptions.push_back(ctx.cube_lit(0, l));
    return ctx.solver().solve(assumptions);
  };

  // Before blocking: both contexts can still reach count == 3 inside F_1.
  EXPECT_EQ(holds_at_frame0(a), sat::LBool::True);
  EXPECT_EQ(holds_at_frame0(b), sat::LBool::True);

  db.add_blocked(cube, 1);
  EXPECT_EQ(holds_at_frame0(a), sat::LBool::False);
  EXPECT_EQ(holds_at_frame0(b), sat::LBool::False);

  // Graduation strengthens every query, even without frame assumptions, and
  // a context constructed *after* the fact replays the full journal.
  db.graduate(cube, 1);
  QueryContext c(ts, prop, {}, options, pool, db);
  c.sync();
  std::vector<sat::Lit> assumptions;
  for (const StateLit& l : cube) assumptions.push_back(c.cube_lit(0, l));
  EXPECT_EQ(c.solver().solve(assumptions), sat::LBool::False);
}

TEST(PdrObligations, LowestLevelFirst) {
  ObligationQueue queue;
  const std::size_t deep = queue.add({{}, 3, {}, {}, -1});
  const std::size_t shallow = queue.add({{}, 1, {}, {}, -1});
  queue.push(deep);
  queue.push(shallow);
  EXPECT_EQ(queue.pop(), shallow);
  EXPECT_EQ(queue.pop(), deep);
  EXPECT_TRUE(queue.empty());
}

// --- verdicts ----------------------------------------------------------------

TEST(PdrEngineTest, ProvesStrideCounterParity) {
  // count += 2 from 0: "count != 7" needs the discovered invariant
  // "count is even"; k-induction cannot prove this at any k.
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));

  PdrEngine engine(ts, {.max_frames = 16});
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());
  EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));

  KInductionEngine kind(ts, {.max_k = 16});
  EXPECT_EQ(kind.prove(prop).verdict, Verdict::Unknown);
}

TEST(PdrEngineTest, GeneralizationShrinksCubes) {
  // Without unsat-core generalization the parity proof would need to block
  // each of the 128 odd 8-bit values separately; with it, a handful of
  // short clauses suffice.
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));
  PdrEngine engine(ts, {.max_frames = 16});
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Proven);
  EXPECT_LE(result.invariant.size(), 8u);
}

TEST(PdrEngineTest, FalsifiedWithConsistentTrace) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(9, 4));

  PdrEngine engine(ts, {.max_frames = 32});
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_TRUE(result.cex->is_consistent());
  const auto violation = result.cex->first_violation(prop);
  ASSERT_TRUE(violation.has_value());
  // The deterministic counter admits exactly one execution: 10 frames.
  EXPECT_EQ(result.cex->size(), 10u);
  EXPECT_EQ(*violation, 9u);
  EXPECT_EQ(result.depth, result.cex->size() - 1);
}

TEST(PdrEngineTest, FalsifiedInInitialState) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(0, 4));
  PdrEngine engine(ts);
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  EXPECT_EQ(result.depth, 0u);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_EQ(result.cex->size(), 1u);
  EXPECT_TRUE(result.cex->first_violation(prop).has_value());
}

TEST(PdrEngineTest, UnknownWhenFramesExhausted) {
  // The unreachable two-hot value 3 requires excluding the whole rotation
  // orbit, one frame per orbit position — more than 3 frames.
  auto ts = walking_one(8);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("x"), nm.mk_const(3, 8));
  PdrEngine engine(ts, {.max_frames = 3});
  EXPECT_EQ(engine.prove(prop).verdict, Verdict::Unknown);
}

TEST(PdrEngineTest, UnknownOnObligationBudget) {
  auto ts = walking_one(8);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("x"), nm.mk_const(3, 8));
  PdrEngine engine(ts, {.max_frames = 64, .max_obligations = 2});
  EXPECT_EQ(engine.prove(prop).verdict, Verdict::Unknown);
}

TEST(PdrEngineTest, SeededLemmaUnlocksBoundedProof) {
  // With the one-hot lemma seeding every frame, the bad states are already
  // excluded and the proof closes within 3 frames; without it, PDR needs to
  // walk the whole orbit (see UnknownWhenFramesExhausted).
  auto ts = walking_one(8);
  auto& nm = ts.nm();
  const NodeRef x = ts.lookup("x");
  const NodeRef prop = nm.mk_ne(x, nm.mk_const(3, 8));
  const NodeRef onehot =
      nm.mk_and(nm.mk_eq(nm.mk_and(x, nm.mk_sub(x, nm.mk_const(1, 8))), nm.mk_const(0, 8)),
                nm.mk_ne(x, nm.mk_const(0, 8)));

  PdrOptions options;
  options.max_frames = 3;
  options.lemmas = {onehot};
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_TRUE(check_invariant(ts, result.invariant, options.lemmas, prop));
}

TEST(PdrEngineTest, ProveAllConjunction) {
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef count = ts.lookup("count");
  const NodeRef p1 = nm.mk_ne(count, nm.mk_const(7, 8));
  const NodeRef p2 = nm.mk_ne(count, nm.mk_const(5, 8));
  PdrEngine engine(ts, {.max_frames = 16});
  EXPECT_EQ(engine.prove_all({p1, p2}).verdict, Verdict::Proven);
}

TEST(PdrEngineTest, RejectsInputDependentInit) {
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const NodeRef in = ts.add_input("i", 4);
  const NodeRef s = ts.add_state("s", 4);
  ts.set_init(s, in);
  ts.set_next(s, s);
  PdrEngine engine(ts);
  EXPECT_THROW(engine.prove(nm.mk_ne(s, nm.mk_const(3, 4))), UsageError);
}

// --- registry designs --------------------------------------------------------

TEST(PdrEngineTest, ProvesRegistryDesignsKInductionCannot) {
  // The headline capability: at the same step bound, PDR closes proofs that
  // k-induction reports Unknown on, because it discovers the helper
  // invariants the GenAI flow would otherwise have to mine.
  for (const char* name : {"sequencer", "token_ring"}) {
    auto task = designs::make_task(name);
    const mc::EngineOptions options{.max_steps = 8};

    auto kind = mc::make_engine(mc::EngineKind::KInduction, task.ts, options);
    EXPECT_EQ(kind->prove_all(task.target_exprs()).verdict, Verdict::Unknown) << name;

    auto pdr = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = pdr->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Proven) << name;
    ASSERT_FALSE(result.invariant.empty()) << name;

    auto nm = task.ts.nm_ptr();
    ir::NodeRef conj = nm->mk_true();
    for (const NodeRef t : task.target_exprs()) conj = nm->mk_and(conj, t);
    EXPECT_TRUE(check_invariant(task.ts, result.invariant, {}, conj)) << name;
  }
}

TEST(PdrEngineTest, InvariantRoundTripsThroughSvaPrinter) {
  // Exported invariant clauses print as SVA, re-parse, and re-compile to the
  // exact same hash-consed expressions — the bidirectional lemma exchange
  // the flows rely on.
  auto task = designs::make_task("sequencer");
  PdrEngine engine(task.ts, {.max_frames = 8});
  const PdrResult result = engine.prove_all(task.target_exprs());
  ASSERT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());
  for (const NodeRef clause : result.invariant) {
    const std::string sva = ir::to_string(clause);
    const auto parsed = sva::parse_property(sva);
    sva::PropertyCompiler compiler(task.ts);
    EXPECT_EQ(compiler.compile(parsed).expr, clause) << sva;
  }
}

// --- the sharded-query architecture ------------------------------------------

/// Verdicts and frontier depths of the pre-refactor single-solver engine at
/// max_steps = 12, recorded design by design before the sharded-query
/// rewrite landed. `pdr_workers == 1` must reproduce them exactly — the
/// refactor re-expresses the same algorithm over FrameDb + QueryContext, so
/// any drift here means the query sequence changed.
struct LegacyExpectation {
  const char* design;
  Verdict verdict;
  std::size_t depth;
  bool slow;  ///< only checked when GENFV_SLOW_TESTS is set (minutes-long)
};
constexpr LegacyExpectation kLegacyRegistry[] = {
    {"sync_counters", Verdict::Unknown, 12, false},
    {"triple_counters", Verdict::Unknown, 12, false},
    {"gray_counter", Verdict::Unknown, 12, false},
    {"updown_pair", Verdict::Proven, 7, false},
    {"lfsr_pair", Verdict::Unknown, 12, false},
    {"lfsr16", Verdict::Unknown, 12, false},
    {"token_ring", Verdict::Proven, 5, false},
    {"sequencer", Verdict::Proven, 4, false},
    {"dual_accumulator", Verdict::Proven, 4, true},
    {"fifo_ctrl", Verdict::Unknown, 12, false},
    {"parity_codec", Verdict::Proven, 2, false},
    {"hamming74", Verdict::Proven, 2, false},
    {"secded84", Verdict::Proven, 2, false},
};

TEST(PdrSharding, SingleWorkerReproducesLegacyTrajectory) {
  const bool slow_ok = std::getenv("GENFV_SLOW_TESTS") != nullptr;
  for (const LegacyExpectation& expected : kLegacyRegistry) {
    if (expected.slow && !slow_ok) continue;
    auto task = designs::make_task(expected.design);
    mc::EngineOptions options;
    options.max_steps = 12;
    auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, expected.verdict) << expected.design;
    EXPECT_EQ(result.depth, expected.depth) << expected.design;
  }
}

TEST(PdrSharding, SingleWorkerIsDeterministicRunToRun) {
  for (const char* name : {"sequencer", "token_ring"}) {
    auto task = designs::make_task(name);
    mc::EngineOptions options;
    options.max_steps = 12;
    mc::EngineResult runs[2];
    for (mc::EngineResult& r : runs) {
      auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
      r = engine->prove_all(task.target_exprs());
    }
    EXPECT_EQ(runs[0].verdict, runs[1].verdict) << name;
    EXPECT_EQ(runs[0].depth, runs[1].depth) << name;
    EXPECT_EQ(runs[0].stats.sat_calls, runs[1].stats.sat_calls) << name;
    EXPECT_EQ(runs[0].stats.conflicts, runs[1].stats.conflicts) << name;
    EXPECT_EQ(runs[0].invariant.size(), runs[1].invariant.size()) << name;
  }
}

TEST(PdrSharding, MultiWorkerAgreesOnRegistryVerdicts) {
  // workers > 1 perturbs the frame trajectory (SAT models differ across
  // interleavings) but can never flip a verdict; depths may shift.
  const bool slow_ok = std::getenv("GENFV_SLOW_TESTS") != nullptr;
  for (const LegacyExpectation& expected : kLegacyRegistry) {
    if (expected.slow && !slow_ok) continue;
    auto task = designs::make_task(expected.design);
    mc::EngineOptions options;
    options.max_steps = 12;
    options.pdr_workers = 4;
    auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, expected.verdict) << expected.design;
    if (result.verdict == Verdict::Proven) {
      ASSERT_FALSE(result.invariant.empty()) << expected.design;
      auto nm = task.ts.nm_ptr();
      ir::NodeRef conj = nm->mk_true();
      for (const NodeRef t : task.target_exprs()) conj = nm->mk_and(conj, t);
      EXPECT_TRUE(check_invariant(task.ts, result.invariant, {}, conj))
          << expected.design;
    }
  }
}

TEST(PdrSharding, MultiWorkerWithForcedRebuildsAgrees) {
  // Several workers crossing the gate limit rebuild their solvers
  // concurrently — the pool's retired-stats fold must be race-free (this
  // runs under TSan in CI) and verdicts must hold.
  auto task = designs::make_task("sequencer");
  mc::EngineOptions options;
  options.max_steps = 12;
  options.pdr_workers = 4;
  options.pdr_rebuild_gate_limit = 2;
  auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
  const mc::EngineResult result = engine->prove_all(task.target_exprs());
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_GT(result.stats.solver_rebuilds, 0u);
  EXPECT_GT(result.stats.retired_gates, 0u);
}

TEST(PdrSharding, MultiWorkerFalsifiesWithConsistentTrace) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(9, 4));
  PdrOptions options;
  options.max_frames = 32;
  options.workers = 4;
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  ASSERT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_TRUE(result.cex->is_consistent());
  const auto violation = result.cex->first_violation(prop);
  ASSERT_TRUE(violation.has_value());
  // The deterministic counter admits exactly one execution: 10 frames —
  // whichever worker found the chain.
  EXPECT_EQ(result.cex->size(), 10u);
  EXPECT_EQ(*violation, 9u);
  EXPECT_EQ(result.depth, result.cex->size() - 1);
}

TEST(PdrSharding, MultiWorkerProvesWithCheckedInvariant) {
  auto ts = stride_counter(8, 2);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));
  PdrOptions options;
  options.max_frames = 16;
  options.workers = 3;
  PdrEngine engine(ts, options);
  const PdrResult result = engine.prove(prop);
  EXPECT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());
  EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));
}

// --- query-gate hygiene ------------------------------------------------------

TEST(PdrRebuild, GateLitterIsCountedInStats) {
  // sequencer's proof takes dozens of blocking queries (each retiring one
  // activation gate) and real CDCL conflicts, so all three hygiene counters
  // must show up in the engine-level stats.
  auto task = designs::make_task("sequencer");
  mc::EngineOptions options;
  options.max_steps = 12;
  auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
  const mc::EngineResult result = engine->prove_all(task.target_exprs());
  ASSERT_EQ(result.verdict, Verdict::Proven);
  EXPECT_GT(result.stats.retired_gates, 0u);
  EXPECT_GT(result.stats.learnt_clauses, 0u);
  EXPECT_EQ(result.stats.learnt_clauses, result.stats.conflicts);
  EXPECT_EQ(result.stats.solver_rebuilds, 0u);  // default: never rebuild
}

TEST(PdrRebuild, ForcedMidRunRebuildPreservesVerdicts) {
  // An aggressively small gate limit forces several in-place solver rebuilds
  // mid-run; the re-encoded solver must reach the same verdicts (models and
  // hence trajectories may differ — depth is not pinned here).
  {
    auto ts = stride_counter(8, 2);
    auto& nm = ts.nm();
    const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(7, 8));
    PdrOptions options;
    options.max_frames = 16;
    options.rebuild_gate_limit = 1;  // rebuild after every retired gate
    PdrEngine engine(ts, options);
    const PdrResult result = engine.prove(prop);
    EXPECT_EQ(result.verdict, Verdict::Proven);
    EXPECT_GT(result.stats.solver_rebuilds, 0u);
    EXPECT_TRUE(check_invariant(ts, result.invariant, {}, prop));
  }
  {
    auto ts = stride_counter(4, 1);
    auto& nm = ts.nm();
    const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(9, 4));
    PdrOptions options;
    options.max_frames = 32;
    options.rebuild_gate_limit = 1;
    PdrEngine engine(ts, options);
    const PdrResult result = engine.prove(prop);
    ASSERT_EQ(result.verdict, Verdict::Falsified);
    ASSERT_TRUE(result.cex.has_value());
    EXPECT_TRUE(result.cex->is_consistent());
    EXPECT_TRUE(result.cex->first_violation(prop).has_value());
  }
  {
    // Registry design: the proof still closes and the invariant checks out.
    auto task = designs::make_task("sequencer");
    mc::EngineOptions options;
    options.max_steps = 12;
    options.pdr_rebuild_gate_limit = 8;
    auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
    const mc::EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Proven);
    EXPECT_GT(result.stats.solver_rebuilds, 0u);
  }
}

// --- the uniform engine interface -------------------------------------------

TEST(EngineInterface, KindParsingAndNames) {
  EXPECT_EQ(engine_kind_from_string("bmc"), EngineKind::Bmc);
  EXPECT_EQ(engine_kind_from_string("kind"), EngineKind::KInduction);
  EXPECT_EQ(engine_kind_from_string("k-induction"), EngineKind::KInduction);
  EXPECT_EQ(engine_kind_from_string("pdr"), EngineKind::Pdr);
  EXPECT_EQ(engine_kind_from_string("ic3"), EngineKind::Pdr);
  EXPECT_FALSE(engine_kind_from_string("bdd").has_value());

  auto ts = stride_counter(4, 1);
  for (const EngineKind kind :
       {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr}) {
    auto engine = mc::make_engine(kind, ts);
    EXPECT_EQ(engine->kind(), kind);
    EXPECT_EQ(engine->name(), mc::to_string(kind));
  }
}

TEST(EngineInterface, AllEnginesAgreeOnFalsified) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ne(ts.lookup("count"), nm.mk_const(5, 4));
  for (const EngineKind kind :
       {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr}) {
    auto engine = mc::make_engine(kind, ts, {.max_steps = 16});
    const mc::EngineResult result = engine->prove(prop);
    EXPECT_EQ(result.verdict, Verdict::Falsified) << engine->name();
    ASSERT_TRUE(result.cex.has_value()) << engine->name();
    EXPECT_TRUE(result.cex->is_consistent()) << engine->name();
    EXPECT_TRUE(result.cex->first_violation(prop).has_value()) << engine->name();
    // Every engine reports effort through the same absorbed solver stats.
    EXPECT_GT(result.stats.sat_calls, 0u) << engine->name();
  }
}

TEST(EngineInterface, BmcNeverProves) {
  auto ts = stride_counter(4, 1);
  auto& nm = ts.nm();
  const NodeRef prop = nm.mk_ule(nm.mk_const(0, 4), ts.lookup("count"));  // trivially true
  auto engine = mc::make_engine(EngineKind::Bmc, ts, {.max_steps = 4});
  EXPECT_EQ(engine->prove(prop).verdict, Verdict::Unknown);
}

}  // namespace
}  // namespace genfv::mc::pdr
