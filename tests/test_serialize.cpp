/// Tests for the transition-system serializer, the VCD exporter and the
/// non-LLM DirectMinerFlow baseline.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "designs/design.hpp"
#include "flow/direct_miner_flow.hpp"
#include "ir/serialize.hpp"
#include "mc/kinduction.hpp"
#include "sim/random_sim.hpp"
#include "sim/vcd.hpp"

namespace genfv {
namespace {

class SerializeZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(SerializeZoo, RoundTripPreservesStructureAndSemantics) {
  auto task = designs::make_task(GetParam());
  const std::string text = ir::serialize(task.ts);
  ir::TransitionSystem copy = ir::deserialize(text);

  // Structure.
  ASSERT_EQ(copy.inputs().size(), task.ts.inputs().size());
  ASSERT_EQ(copy.states().size(), task.ts.states().size());
  ASSERT_EQ(copy.constraints().size(), task.ts.constraints().size());
  ASSERT_EQ(copy.properties().size(), task.ts.properties().size());
  ASSERT_EQ(copy.signals().size(), task.ts.signals().size());
  EXPECT_EQ(copy.name(), task.ts.name());
  for (std::size_t i = 0; i < copy.properties().size(); ++i) {
    EXPECT_EQ(copy.properties()[i].name, task.ts.properties()[i].name);
    EXPECT_EQ(copy.properties()[i].role, task.ts.properties()[i].role);
  }

  // Semantics: run lock-step random simulations of original and copy with
  // the same seed; every named signal must agree on every frame.
  sim::RandomSimulator sim_a(task.ts, 991);
  sim::RandomSimulator sim_b(copy, 991);
  const sim::Trace trace_a = sim_a.run(60);
  const sim::Trace trace_b = sim_b.run(60);
  for (std::size_t f = 0; f < trace_a.size(); ++f) {
    for (const auto& s : task.ts.states()) {
      const ir::NodeRef other = copy.lookup(s.var->name());
      ASSERT_NE(other, nullptr);
      ASSERT_EQ(trace_a.value(s.var, f), trace_b.value(other, f))
          << GetParam() << " state " << s.var->name() << " frame " << f;
    }
  }

  // A second round trip must also parse (byte-identity is NOT guaranteed:
  // commutative operands are normalized by node id, which is assigned in
  // construction order and may differ after a round trip).
  EXPECT_NO_THROW(ir::deserialize(ir::serialize(copy)));
}

std::vector<std::string> zoo_names() {
  std::vector<std::string> names;
  for (const auto& d : designs::all_designs()) names.push_back(d.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(Zoo, SerializeZoo, ::testing::ValuesIn(zoo_names()),
                         [](const auto& info) { return info.param; });

TEST(Serialize, DeserializedSystemIsProvable) {
  auto task = designs::make_task("sync_counters");
  ir::TransitionSystem copy = ir::deserialize(ir::serialize(task.ts));
  auto& nm = copy.nm();
  const ir::NodeRef helper = nm.mk_eq(copy.lookup("count1"), copy.lookup("count2"));
  mc::KInductionEngine engine(copy, {.max_k = 4, .lemmas = {helper}});
  EXPECT_EQ(engine.prove(copy.property(0).expr).verdict, mc::Verdict::Proven);
}

TEST(Serialize, Diagnostics) {
  EXPECT_THROW(ir::deserialize(""), ParseError);
  EXPECT_THROW(ir::deserialize("bogus header\n"), ParseError);
  EXPECT_THROW(ir::deserialize("genfv-ts 1\n1 add 4 7 8\n"), ParseError);  // fwd refs
  EXPECT_THROW(ir::deserialize("genfv-ts 1\n1 frobnicate 4\n"), ParseError);
  EXPECT_THROW(ir::deserialize("genfv-ts 1\n1 const 4 3\ninit 1 1\n"), Error)
      << "init on a non-state must be rejected";
  // Comments and blank lines are fine.
  EXPECT_NO_THROW(ir::deserialize("genfv-ts 1\n; comment\n\n1 input 4 x\n"));
}

TEST(Serialize, WidthMismatchRejected) {
  EXPECT_THROW(ir::deserialize("genfv-ts 1\n1 input 4 x\n2 not 5 1\n"), Error);
}

TEST(Vcd, ContainsHeaderVarsAndChanges) {
  auto task = designs::make_task("sync_counters");
  sim::RandomSimulator simulator(task.ts, 5);
  const sim::Trace trace = simulator.run(4);
  const std::string vcd =
      sim::render_vcd(trace, sim::default_signals(task.ts), "sync_counters");
  EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(vcd.find("$scope module sync_counters $end"), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 32 "), std::string::npos);
  EXPECT_NE(vcd.find("$var wire 1 "), std::string::npos);
  EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
  EXPECT_NE(vcd.find("#0"), std::string::npos);
  EXPECT_NE(vcd.find("#4"), std::string::npos);
  // Counter value 2 at t2 appears as a binary vector change.
  EXPECT_NE(vcd.find("b00000000000000000000000000000010 "), std::string::npos);
}

TEST(Vcd, OnlyChangedValuesAreEmittedAfterFrameZero) {
  // A hold register never re-emits its value.
  ir::TransitionSystem ts;
  auto& nm = ts.nm();
  const ir::NodeRef held = ts.add_state("held", 4);
  ts.set_init(held, nm.mk_const(9, 4));
  ts.set_next(held, held);
  sim::RandomSimulator simulator(ts, 1);
  const sim::Trace trace = simulator.run(5);
  const std::string vcd = sim::render_vcd(trace, sim::default_signals(ts));
  // Exactly one occurrence of the value change for `held`.
  std::size_t count = 0;
  for (std::size_t pos = vcd.find("b1001 "); pos != std::string::npos;
       pos = vcd.find("b1001 ", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

TEST(DirectMinerFlow, ClosesTheZooWithoutAnyModel) {
  // The non-LLM baseline: all mining passes, no noise, same review gate.
  for (const auto& info : designs::all_designs()) {
    auto task = designs::make_task(info);
    flow::DirectMinerOptions options;
    options.engine.max_k = 8;
    flow::DirectMinerFlow direct(options);
    const flow::FlowReport report = direct.run(task);
    EXPECT_TRUE(report.all_targets_proven()) << info.name << "\n" << report.to_string();
    EXPECT_EQ(report.flow, "direct_miner");
  }
}

TEST(DirectMinerFlow, ReportsSingleIterationAndNoModelLatency) {
  auto task = designs::make_task("fifo_ctrl");
  flow::DirectMinerFlow direct(flow::DirectMinerOptions{});
  const flow::FlowReport report = direct.run(task);
  ASSERT_EQ(report.iterations.size(), 1u);
  EXPECT_EQ(report.llm_seconds, 0.0);
  EXPECT_GT(report.candidates_total(), 0u);
}

}  // namespace
}  // namespace genfv
