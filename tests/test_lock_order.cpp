/// Debug lockdep tests (util/lock_order.hpp): the acquisition-graph checker
/// must detect a seeded A->B / B->A inversion and a same-class nesting, stay
/// silent on clean ordered nesting, and flag a lock held across
/// sat::SolverPool::rebuild(). Every test is skipped in configurations that
/// compile the lockdep layer away (Release without -DGENFV_LOCK_ORDER=ON);
/// the Debug ctest runs — including the sanitizer CI legs — exercise it for
/// real. Tests reset the global graph on entry and exit so the process-wide
/// "zero cycles at the end of a clean suite" property holds for this binary
/// too: the seeded violations below must never outlive their test.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sat/solver_pool.hpp"
#include "util/lock_order.hpp"
#include "util/thread_safety.hpp"

namespace genfv::util {
namespace {

namespace ld = lockdep;

class LockOrder : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!ld::enabled()) GTEST_SKIP() << "lockdep compiled away in this config";
    ld::reset();
  }
  void TearDown() override { ld::reset(); }
};

TEST_F(LockOrder, CleanNestingReportsNothing) {
  Mutex a{"lockdep_test.A"};
  Mutex b{"lockdep_test.B"};
  // Consistent A-before-B nesting, plus standalone acquisitions: a DAG.
  for (int i = 0; i < 3; ++i) {
    MutexLock la(a);
    MutexLock lb(b);
  }
  { MutexLock lb(b); }
  EXPECT_EQ(ld::cycle_count(), 0u);
  EXPECT_EQ(ld::hazard_count(), 0u);
  EXPECT_EQ(ld::held_by_this_thread(), 0u);
}

TEST_F(LockOrder, AbBaInversionIsDetected) {
  Mutex a{"lockdep_test.A"};
  Mutex b{"lockdep_test.B"};
  {
    MutexLock la(a);
    MutexLock lb(b);  // edge A -> B
  }
  {
    MutexLock lb(b);
    MutexLock la(a);  // edge B -> A closes the cycle
  }
  ASSERT_EQ(ld::cycle_count(), 1u);
  const std::string report = ld::cycle_reports().front();
  EXPECT_NE(report.find("lockdep_test.A"), std::string::npos) << report;
  EXPECT_NE(report.find("lockdep_test.B"), std::string::npos) << report;
  EXPECT_NE(report.find("cycle"), std::string::npos) << report;
}

TEST_F(LockOrder, TransitiveInversionIsDetected) {
  // A -> B and B -> C are individually fine; C -> A closes a 3-cycle that no
  // pairwise check would see.
  Mutex a{"lockdep_test.A"};
  Mutex b{"lockdep_test.B"};
  Mutex c{"lockdep_test.C"};
  {
    MutexLock la(a);
    MutexLock lb(b);
  }
  {
    MutexLock lb(b);
    MutexLock lc(c);
  }
  EXPECT_EQ(ld::cycle_count(), 0u);
  {
    MutexLock lc(c);
    MutexLock la(a);
  }
  ASSERT_EQ(ld::cycle_count(), 1u);
  EXPECT_NE(ld::cycle_reports().front().find("lockdep_test.C"),
            std::string::npos);
}

TEST_F(LockOrder, SameClassNestingIsFlagged) {
  // Two *instances* of one lock class nested: an ABBA deadlock waiting for
  // the right interleaving. Lockdep treats class-level self-edges as cycles.
  Mutex first{"lockdep_test.same"};
  Mutex second{"lockdep_test.same"};
  {
    MutexLock lf(first);
    MutexLock ls(second);
  }
  ASSERT_EQ(ld::cycle_count(), 1u);
  EXPECT_NE(ld::cycle_reports().front().find("lockdep_test.same"),
            std::string::npos);
}

TEST_F(LockOrder, LockHeldAcrossSolverRebuildIsAHazard) {
  // SolverPool::rebuild() frees and reallocates a solver; a caller entering
  // it with any lock held risks both lock-order surprises and long critical
  // sections, so rebuild() declares itself a no-locks-held region.
  sat::SolverPool pool;
  const std::size_t handle = pool.acquire();
  { pool.rebuild(handle); }  // clean call: no hazard
  EXPECT_EQ(ld::hazard_count(), 0u);

  Mutex outer{"lockdep_test.outer"};
  {
    MutexLock lock(outer);
    pool.rebuild(handle);
  }
  ASSERT_EQ(ld::hazard_count(), 1u);
  const std::string report = ld::hazard_reports().front();
  EXPECT_NE(report.find("SolverPool::rebuild"), std::string::npos) << report;
  EXPECT_NE(report.find("lockdep_test.outer"), std::string::npos) << report;

  // Identical repeat offenses are deduplicated, not re-reported.
  {
    MutexLock lock(outer);
    pool.rebuild(handle);
  }
  EXPECT_EQ(ld::hazard_count(), 1u);
}

TEST_F(LockOrder, HeldCountTracksScopedLocks) {
  Mutex a{"lockdep_test.A"};
  EXPECT_EQ(ld::held_by_this_thread(), 0u);
  {
    MutexLock lock(a);
    EXPECT_EQ(ld::held_by_this_thread(), 1u);
    lock.Unlock();
    EXPECT_EQ(ld::held_by_this_thread(), 0u);
    lock.Lock();
    EXPECT_EQ(ld::held_by_this_thread(), 1u);
  }
  EXPECT_EQ(ld::held_by_this_thread(), 0u);
}

}  // namespace
}  // namespace genfv::util
