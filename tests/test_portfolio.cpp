/// Portfolio engine tests: first-conclusive-verdict scheduling in both the
/// threaded and the deterministic time-sliced mode, cooperative stop-flag
/// cancellation of every member engine, system cloning across NodeManagers,
/// result translation back into the caller's system, the lemma-file round
/// trip through LemmaManager, and flow-level engine selection.

#include <gtest/gtest.h>

#include <atomic>

#include "designs/design.hpp"
#include "flow/cex_repair_flow.hpp"
#include "flow/lemma_io.hpp"
#include "flow/lemma_manager.hpp"
#include "genai/simulated_llm.hpp"
#include "ir/clone.hpp"
#include "ir/printer.hpp"
#include "mc/engine.hpp"
#include "mc/portfolio.hpp"
#include "sat/solver.hpp"
#include "sva/compiler.hpp"
#include "util/status.hpp"

namespace genfv::mc {
namespace {

using ir::NodeRef;

bool conclusive(Verdict v) { return v != Verdict::Unknown; }

/// Width-4 counter pair in lockstep; `bound_prop` makes a falsifiable
/// property available (`a != 10` fails at frame 10).
flow::VerificationTask counter_task(const std::string& property) {
  return flow::VerificationTask::from_rtl(
      "toy_counters", "two lockstep counters",
      R"(module toy_counters (input clk, rst, output logic [3:0] a, b);
  always_ff @(posedge clk) begin
    if (rst) begin
      a <= 4'b0;
      b <= 4'b0;
    end else begin
      a <= a + 1;
      b <= b + 1;
    end
  end
endmodule
)",
      {{"target", property}});
}

// --- SystemClone -------------------------------------------------------------

TEST(SystemClone, DeepCopyPreservesStructureAndRoundTripsExpressions) {
  auto task = designs::make_task("token_ring");
  ir::SystemClone clone(task.ts);
  const ir::TransitionSystem& copy = clone.system();

  EXPECT_NE(task.ts.nm_ptr().get(), copy.nm_ptr().get());
  ASSERT_EQ(copy.inputs().size(), task.ts.inputs().size());
  ASSERT_EQ(copy.states().size(), task.ts.states().size());
  ASSERT_EQ(copy.constraints().size(), task.ts.constraints().size());
  ASSERT_EQ(copy.num_properties(), task.ts.num_properties());
  copy.validate();

  // Declaration order and leaf identity carry over; every copied expression
  // translates back to the *pointer-identical* original node (hash-consing
  // makes structural equality pointer equality within one manager). Note the
  // serialized text may differ: commutative operands sort by node id, and
  // ids are manager-local.
  for (std::size_t i = 0; i < task.ts.states().size(); ++i) {
    const auto& orig = task.ts.states()[i];
    const auto& cloned = copy.states()[i];
    EXPECT_EQ(cloned.var->name(), orig.var->name());
    EXPECT_EQ(cloned.var->width(), orig.var->width());
    EXPECT_EQ(clone.to_original(cloned.next), orig.next);
    if (orig.init != nullptr) EXPECT_EQ(clone.to_original(cloned.init), orig.init);
  }
  for (std::size_t i = 0; i < task.ts.num_properties(); ++i) {
    EXPECT_EQ(clone.to_original(copy.property(i).expr), task.ts.property(i).expr);
  }
  for (const NodeRef expr : task.target_exprs()) {
    const NodeRef there = clone.to_clone(expr);
    EXPECT_NE(there, expr);
    EXPECT_EQ(clone.to_original(there), expr);
  }
}

TEST(SystemClone, TranslateRejectsUnmappedLeaves) {
  ir::TransitionSystem a;
  const NodeRef x = a.add_state("x", 4);
  ir::TransitionSystem b;
  std::unordered_map<NodeRef, NodeRef> empty_map;
  EXPECT_THROW(ir::translate(a.nm().mk_eq(x, a.nm().mk_const(0, 4)), b.nm(), empty_map),
               UsageError);
}

// --- cooperative cancellation ------------------------------------------------

TEST(StopFlag, PresetFlagYieldsUnknownForEveryEngine) {
  for (const EngineKind kind :
       {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr}) {
    auto task = designs::make_task("token_ring");
    EngineOptions options;
    options.max_steps = 64;
    options.stop = std::make_shared<std::atomic<bool>>(true);
    auto engine = make_engine(kind, task.ts, options);
    const EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Unknown) << to_string(kind);
    // A cancelled run must not have done any real exploration.
    EXPECT_LE(result.depth, 1u) << to_string(kind);
  }
}

TEST(Portfolio, WinnerCancelsLosers) {
  // At an absurd step budget, BMC alone would unroll for a very long time;
  // the only way it reports far fewer frames is the winner's stop flag.
  auto task = designs::make_task("token_ring");
  EngineOptions options;
  options.max_steps = 100000;
  auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
  const EngineResult result = engine->prove_all(task.target_exprs());

  EXPECT_EQ(result.verdict, Verdict::Proven);
  // With live exchange, k-induction can absorb PDR's published clauses and
  // close first — either prover may take the flag, never BMC.
  EXPECT_TRUE(result.winner == "pdr" || result.winner == "k-induction")
      << result.winner;
  ASSERT_EQ(result.breakdown.size(), 3u);
  for (const EngineBreakdown& member : result.breakdown) {
    if (member.engine == "bmc") {
      EXPECT_EQ(member.verdict, Verdict::Unknown);
      EXPECT_LT(member.depth, 100000u);  // cancelled, not exhausted
    }
  }
}

TEST(Portfolio, ExternalStopCancelsTheWholeRace) {
  auto task = designs::make_task("token_ring");
  EngineOptions options;
  options.max_steps = 64;
  options.stop = std::make_shared<std::atomic<bool>>(true);  // pre-cancelled
  for (const bool threads : {true, false}) {
    options.portfolio_threads = threads;
    auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
    const EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Unknown) << "threads=" << threads;
    EXPECT_TRUE(result.winner.empty()) << "threads=" << threads;
  }
}

// --- first-conclusive-verdict scheduling -------------------------------------

TEST(Portfolio, AgreesWithSingleEnginesOnTheRegistry) {
  const std::vector<std::string> names = {"sync_counters", "sequencer", "token_ring",
                                          "updown_pair",   "lfsr16",    "gray_counter"};
  constexpr std::size_t kMaxSteps = 12;
  for (const std::string& name : names) {
    std::optional<Verdict> single_conclusive;
    for (const EngineKind kind :
         {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr}) {
      auto task = designs::make_task(name);
      auto engine = make_engine(kind, task.ts, {.max_steps = kMaxSteps});
      const EngineResult r = engine->prove_all(task.target_exprs());
      if (conclusive(r.verdict)) {
        // Soundness: conclusive single-engine verdicts can never disagree.
        if (single_conclusive.has_value()) EXPECT_EQ(*single_conclusive, r.verdict);
        single_conclusive = r.verdict;
      }
    }
    for (const bool threads : {true, false}) {
      auto task = designs::make_task(name);
      EngineOptions options;
      options.max_steps = kMaxSteps;
      options.portfolio_threads = threads;
      auto portfolio = make_engine(EngineKind::Portfolio, task.ts, options);
      const EngineResult r = portfolio->prove_all(task.target_exprs());
      if (single_conclusive.has_value()) {
        EXPECT_EQ(r.verdict, *single_conclusive)
            << name << " threads=" << threads;
        EXPECT_FALSE(r.winner.empty()) << name;
      } else {
        EXPECT_EQ(r.verdict, Verdict::Unknown) << name << " threads=" << threads;
        EXPECT_TRUE(r.winner.empty()) << name;
      }
      EXPECT_EQ(r.breakdown.size(), 3u) << name;
    }
  }
}

TEST(Portfolio, FalsifiedCexTranslatesBackToTheOriginalSystem) {
  auto task = counter_task("property bound; a != 4'd10; endproperty");
  EngineOptions options;
  options.max_steps = 16;
  auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
  const EngineResult result = engine->prove_all(task.target_exprs());

  EXPECT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.cex.has_value());
  // The trace must be expressed over the *caller's* system (the threaded
  // portfolio found it on a clone) and be a genuine execution of it.
  EXPECT_EQ(result.cex->system(), &task.ts);
  EXPECT_TRUE(result.cex->is_consistent());
  const NodeRef target = task.target_exprs().front();
  ASSERT_TRUE(result.cex->first_violation(target).has_value());
}

TEST(Portfolio, TimeSlicedIsDeterministic) {
  auto run_once = [] {
    auto task = designs::make_task("token_ring");
    EngineOptions options;
    options.max_steps = 16;
    options.portfolio_threads = false;
    auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
    return engine->prove_all(task.target_exprs());
  };
  const EngineResult a = run_once();
  const EngineResult b = run_once();
  EXPECT_EQ(a.verdict, Verdict::Proven);
  // Live exchange hands PDR's early F_∞ clauses to k-induction, which now
  // closes token_ring before PDR's own slice converges — deterministically.
  EXPECT_EQ(a.winner, "k-induction");
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.stats.sat_calls, b.stats.sat_calls);
  EXPECT_EQ(a.invariant.size(), b.invariant.size());
  ASSERT_EQ(a.breakdown.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a.breakdown[i].lemmas_published, b.breakdown[i].lemmas_published);
    EXPECT_EQ(a.breakdown[i].lemmas_absorbed, b.breakdown[i].lemmas_absorbed);
  }
}

// --- stats conservation ------------------------------------------------------

/// Per-field check that the merged portfolio stats equal the sum of the
/// member breakdowns. `seconds` is excluded by design: the merged value is
/// the race's wall clock, not the sum of concurrent member clocks.
testing::AssertionResult stats_conserved(const EngineResult& result) {
  EngineStats sum;
  for (const EngineBreakdown& member : result.breakdown) sum += member.stats;
  const EngineStats& merged = result.stats;
  const struct {
    const char* name;
    std::uint64_t merged;
    std::uint64_t summed;
  } fields[] = {
      {"sat_calls", merged.sat_calls, sum.sat_calls},
      {"conflicts", merged.conflicts, sum.conflicts},
      {"decisions", merged.decisions, sum.decisions},
      {"propagations", merged.propagations, sum.propagations},
      {"restarts", merged.restarts, sum.restarts},
      {"learnt_clauses", merged.learnt_clauses, sum.learnt_clauses},
      {"retired_gates", merged.retired_gates, sum.retired_gates},
      {"solver_rebuilds", merged.solver_rebuilds, sum.solver_rebuilds},
      {"lifted_bits", merged.lifted_bits, sum.lifted_bits},
      {"candidates_seeded", merged.candidates_seeded, sum.candidates_seeded},
      {"candidates_graduated", merged.candidates_graduated, sum.candidates_graduated},
      {"candidates_retracted", merged.candidates_retracted, sum.candidates_retracted},
  };
  for (const auto& f : fields) {
    if (f.merged != f.summed) {
      return testing::AssertionFailure()
             << f.name << ": merged result reports " << f.merged
             << " but the member breakdowns sum to " << f.summed;
    }
  }
  return testing::AssertionSuccess();
}

TEST(StatsConservation, ThreadedPortfolioMergeEqualsMemberSum) {
  // Multi-worker PDR with forced solver rebuilds inside a threaded race:
  // every effort counter a member accumulated (including the rebuild-fold
  // paths through the solver pool) must survive into the merged stats —
  // nothing lost, nothing double-counted.
  auto task = designs::make_task("sequencer");
  EngineOptions options;
  options.max_steps = 12;
  options.pdr_workers = 4;
  options.pdr_rebuild_gate_limit = 2;
  auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
  const EngineResult result = engine->prove_all(task.target_exprs());
  EXPECT_EQ(result.verdict, Verdict::Proven);
  ASSERT_EQ(result.breakdown.size(), 3u);
  EXPECT_TRUE(stats_conserved(result));
  // The run did real work, so conservation is not vacuous.
  EXPECT_GT(result.stats.sat_calls, 0u);
  EXPECT_GT(result.stats.conflicts, 0u);
  EXPECT_GT(result.stats.solver_rebuilds, 0u);
}

TEST(StatsConservation, TimeSlicedPortfolioMergeEqualsMemberSum) {
  // Same invariant on the deterministic scheduler, whose merge path is
  // different: per-slice accumulation into the breakdown, summed at finish.
  auto task = designs::make_task("token_ring");
  EngineOptions options;
  options.max_steps = 16;
  options.portfolio_threads = false;
  auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
  const EngineResult result = engine->prove_all(task.target_exprs());
  EXPECT_EQ(result.verdict, Verdict::Proven);
  ASSERT_EQ(result.breakdown.size(), 3u);
  EXPECT_TRUE(stats_conserved(result));
  EXPECT_GT(result.stats.sat_calls, 0u);
}

TEST(StatsConservation, AbsorbAccumulatesEveryMappedSolverCounter) {
  // EngineStats::absorb is the single funnel from solver-level to
  // engine-level counters; distinct primes catch any crossed-wire or
  // dropped-field regression in the mapping.
  sat::SolverStats solver;
  solver.solves = 2;
  solver.decisions = 3;
  solver.propagations = 5;
  solver.conflicts = 7;
  solver.restarts = 11;
  solver.learnt_clauses = 13;

  EngineStats stats;
  stats.absorb(solver);
  stats.absorb(solver);  // absorption must accumulate, not overwrite
  EXPECT_EQ(stats.sat_calls, 4u);  // SolverStats::solves maps to sat_calls
  EXPECT_EQ(stats.decisions, 6u);
  EXPECT_EQ(stats.propagations, 10u);
  EXPECT_EQ(stats.conflicts, 14u);
  EXPECT_EQ(stats.restarts, 22u);
  EXPECT_EQ(stats.learnt_clauses, 26u);
}

TEST(Portfolio, SeededLemmasReachEveryMemberClone) {
  // sync_counters is not inductive and not clause-compact, so no member
  // concludes alone at this bound; with the equality lemma translated into
  // every clone, k-induction closes immediately.
  auto task = designs::make_task("sync_counters");
  sva::PropertyCompiler compiler(task.ts);
  const NodeRef lemma = compiler.compile_expr("count1 == count2");

  EngineOptions options;
  options.max_steps = 6;
  options.lemmas = {lemma};
  auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
  const EngineResult result = engine->prove_all(task.target_exprs());
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_FALSE(result.winner.empty());
}

TEST(Portfolio, RejectsItselfAsMember) {
  auto task = designs::make_task("token_ring");
  EngineOptions options;
  options.portfolio_engines = {EngineKind::Pdr, EngineKind::Portfolio};
  EXPECT_THROW(make_engine(EngineKind::Portfolio, task.ts, options), UsageError);
}

TEST(Portfolio, UnknownRaceForwardsAStepCexForTheRepairLoop) {
  // No member concludes on sync_counters without help, but k-induction
  // produces the induction-step artefact — the portfolio must forward it so
  // the GenAI repair loop stays usable behind EngineKind::Portfolio.
  auto task = designs::make_task("sync_counters");
  EngineOptions options;
  options.max_steps = 4;
  for (const bool threads : {true, false}) {
    options.portfolio_threads = threads;
    auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
    const EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Unknown) << "threads=" << threads;
    ASSERT_TRUE(result.step_cex.has_value()) << "threads=" << threads;
    EXPECT_GT(result.step_cex->size(), 0u);
  }
}

// --- live lemma exchange -----------------------------------------------------

TEST(LemmaMailbox, FetchSkipsOwnClausesAndHonorsCallerCursor) {
  LemmaMailbox mailbox(2);
  mailbox.publish(0, {{{0, 0, false}}, kExchangeProvenLevel});
  mailbox.publish(1, {{{0, 1, true}}, 3});
  mailbox.publish(0, {{{0, 2, false}}, kExchangeProvenLevel});

  std::size_t cursor = 0;
  const auto first = mailbox.fetch(0, &cursor);  // member 0 sees only member 1's
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].level, 3u);
  EXPECT_FALSE(first[0].proven());
  EXPECT_TRUE(mailbox.fetch(0, &cursor).empty());  // cursor advanced past all

  std::size_t fresh = 0;  // a fresh consumer re-reads the full backlog
  EXPECT_EQ(mailbox.fetch(1, &fresh).size(), 2u);

  mailbox.note_absorbed(1, 2);
  EXPECT_EQ(mailbox.published_by(0), 2u);
  EXPECT_EQ(mailbox.published_by(1), 1u);
  EXPECT_EQ(mailbox.absorbed_by(1), 2u);
  EXPECT_EQ(mailbox.size(), 3u);
}

TEST(LemmaMailbox, MaterializeRebuildsTheClauseAndRejectsMisfits) {
  auto task = designs::make_task("token_ring");
  ASSERT_FALSE(task.ts.states().empty());
  const std::uint32_t width = task.ts.states()[0].var->width();

  const ExchangedClause good{{{0, 0, false}}, kExchangeProvenLevel};
  const NodeRef expr = materialize(good, task.ts);
  ASSERT_NE(expr, nullptr);
  EXPECT_EQ(expr->width(), 1u);

  // Out-of-range state index / bit index: "does not fit", never a throw —
  // consumers skip such clauses (they came from an incompatible system).
  const std::uint32_t states = static_cast<std::uint32_t>(task.ts.states().size());
  EXPECT_EQ(materialize({{{states, 0, false}}, 1}, task.ts), nullptr);
  EXPECT_EQ(materialize({{{0, width, false}}, 1}, task.ts), nullptr);
  EXPECT_EQ(materialize({{}, 1}, task.ts), nullptr);
}

TEST(TranslateBetween, CrossCloneRoundTrip) {
  // The mailbox itself never carries NodeRefs, but translate_between is the
  // general clone-to-clone path: expressions move between two sibling clones
  // without touching the original's manager.
  auto task = designs::make_task("token_ring");
  ir::SystemClone a(task.ts);
  ir::SystemClone b(task.ts);
  for (const NodeRef expr : task.target_exprs()) {
    const NodeRef in_a = a.to_clone(expr);
    const NodeRef in_b = ir::translate_between(in_a, a.system(), b.system());
    EXPECT_EQ(b.to_original(in_b), expr);
    EXPECT_EQ(in_b, b.to_clone(expr));  // hash-consing: same node either way
  }
}

TEST(Exchange, PdrPublishedClausesProveTokenRingForAStuckKInduction) {
  // Publisher and consumer live in *different* systems with different
  // NodeManagers — the clause transport is manager-neutral end to end.
  auto mailbox = std::make_shared<LemmaMailbox>(2);

  auto pdr_task = designs::make_task("token_ring");
  EngineOptions pdr_opts;
  pdr_opts.max_steps = 16;
  pdr_opts.exchange_mailbox = mailbox;
  pdr_opts.exchange_slot = 0;
  auto pdr = make_engine(EngineKind::Pdr, pdr_task.ts, pdr_opts);
  EXPECT_EQ(pdr->prove_all(pdr_task.target_exprs()).verdict, Verdict::Proven);
  EXPECT_GE(mailbox->published_by(0), 1u);

  auto kind_task = designs::make_task("token_ring");
  {
    EngineOptions alone;
    alone.max_steps = 16;
    auto engine = make_engine(EngineKind::KInduction, kind_task.ts, alone);
    EXPECT_EQ(engine->prove_all(kind_task.target_exprs()).verdict, Verdict::Unknown);
  }
  EngineOptions kind_opts;
  kind_opts.max_steps = 16;
  kind_opts.exchange_mailbox = mailbox;
  kind_opts.exchange_slot = 1;
  auto kind = make_engine(EngineKind::KInduction, kind_task.ts, kind_opts);
  const EngineResult result = kind->prove_all(kind_task.target_exprs());
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_GE(mailbox->absorbed_by(1), 1u);
  // The absorbed invariant clauses are exported so a k-induction win keeps
  // feeding the lemma loop exactly like a PDR win.
  EXPECT_FALSE(result.invariant.empty());
}

TEST(Exchange, TimeSlicedKInductionAbsorbsPdrClausesMidRace) {
  // The paper's acceptance scenario, deterministically: k-induction alone is
  // Unknown on token_ring at this bound (asserted above), but inside the
  // time-sliced portfolio it observes clauses PDR published during earlier
  // (inconclusive) slices and closes the proof first.
  auto task = designs::make_task("token_ring");
  EngineOptions options;
  options.max_steps = 16;
  options.portfolio_threads = false;
  auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
  const EngineResult result = engine->prove_all(task.target_exprs());

  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_EQ(result.winner, "k-induction");
  ASSERT_EQ(result.breakdown.size(), 3u);
  const EngineBreakdown& kind = result.breakdown[1];
  const EngineBreakdown& pdr = result.breakdown[2];
  ASSERT_EQ(kind.engine, "k-induction");
  ASSERT_EQ(pdr.engine, "pdr");
  EXPECT_GE(pdr.lemmas_published, 1u);
  EXPECT_GE(kind.lemmas_absorbed, 1u);
  EXPECT_FALSE(result.invariant.empty());
}

TEST(Exchange, NeverChangesAConcludedVerdict) {
  // Exchange may upgrade Unknown to a conclusive verdict (that is the
  // point), but where the exchange-off portfolio already concluded, the
  // exchange-on portfolio must conclude identically — absorbed clauses are
  // invariants, so they can never mask a real counterexample or fake a
  // proof.
  const std::vector<std::string> names = {"sync_counters", "sequencer", "token_ring",
                                          "updown_pair",   "lfsr16",    "gray_counter"};
  for (const std::string& name : names) {
    Verdict verdicts[2];
    for (const bool exchange : {false, true}) {
      auto task = designs::make_task(name);
      EngineOptions options;
      options.max_steps = 12;
      options.portfolio_threads = false;
      options.exchange = exchange;
      auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
      verdicts[exchange ? 1 : 0] = engine->prove_all(task.target_exprs()).verdict;
    }
    if (conclusive(verdicts[0])) {
      EXPECT_EQ(verdicts[1], verdicts[0]) << name;
    }
  }
}

TEST(Exchange, DisabledExchangeKeepsTheMailboxOut) {
  auto task = designs::make_task("token_ring");
  EngineOptions options;
  options.max_steps = 16;
  options.portfolio_threads = false;
  options.exchange = false;
  auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
  const EngineResult result = engine->prove_all(task.target_exprs());
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_EQ(result.winner, "pdr");  // nobody absorbs, PDR converges alone
  for (const EngineBreakdown& member : result.breakdown) {
    EXPECT_EQ(member.lemmas_published, 0u) << member.engine;
    EXPECT_EQ(member.lemmas_absorbed, 0u) << member.engine;
  }
}

TEST(Exchange, FrameClauseOptionReachesMembersThroughWholesaleCopy) {
  // Regression for the hand-copied member options: any knob added to
  // EngineOptions must reach the members. `exchange_frame_clauses` is
  // exactly such a knob — behind it, PDR publishes every frame-k blocked
  // clause, so its published counter must strictly exceed the F_∞-only run.
  std::size_t published[2];
  for (const bool frame_clauses : {false, true}) {
    auto task = designs::make_task("token_ring");
    EngineOptions options;
    options.max_steps = 16;
    options.portfolio_threads = false;
    options.exchange_frame_clauses = frame_clauses;
    auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
    const EngineResult result = engine->prove_all(task.target_exprs());
    ASSERT_EQ(result.breakdown.size(), 3u);
    EXPECT_EQ(result.verdict, Verdict::Proven) << "frame_clauses=" << frame_clauses;
    published[frame_clauses ? 1 : 0] = result.breakdown[2].lemmas_published;
  }
  EXPECT_GT(published[1], published[0]);
}

TEST(Exchange, BmcAbsorbsPublishedClauses) {
  // A proven clause (here: the mutual-exclusion of two token bits, a true
  // invariant of the ring) published by "someone else" must be absorbed by
  // BMC without disturbing its bounded search.
  auto task = designs::make_task("token_ring");
  std::uint32_t token_index = 0;
  bool found = false;
  for (std::uint32_t i = 0; i < task.ts.states().size(); ++i) {
    if (task.ts.states()[i].var->name() == "token") {
      token_index = i;
      found = true;
    }
  }
  ASSERT_TRUE(found);

  auto mailbox = std::make_shared<LemmaMailbox>(2);
  mailbox->publish(0, {{{token_index, 0, false}, {token_index, 1, false}},
                       kExchangeProvenLevel});
  mailbox->publish(0, {{{token_index, 2, false}}, 2});  // level-tagged

  EngineOptions options;
  options.max_steps = 4;
  options.exchange_mailbox = mailbox;
  options.exchange_slot = 1;
  auto bmc = make_engine(EngineKind::Bmc, task.ts, options);
  const EngineResult result = bmc->prove_all(task.target_exprs());
  EXPECT_EQ(result.verdict, Verdict::Unknown);  // no CEX exists: property holds
  EXPECT_EQ(mailbox->absorbed_by(1), 2u);
}

TEST(Exchange, AbsorbFilterAdmitsEachManagerNeutralFormOnce) {
  AbsorbFilter filter;
  const ExchangedClause proven{{{0, 1, false}, {2, 0, true}}, kExchangeProvenLevel};
  EXPECT_TRUE(filter.admit(proven));
  EXPECT_FALSE(filter.admit(proven));  // exact duplicate

  // Same literals at a different level are a *different* fact (bounded vs
  // proven), so they pass.
  const ExchangedClause bounded{{{0, 1, false}, {2, 0, true}}, 3};
  EXPECT_TRUE(filter.admit(bounded));
  EXPECT_FALSE(filter.admit(bounded));

  // And genuinely different literals pass regardless of publisher or order
  // of arrival.
  EXPECT_TRUE(filter.admit({{{0, 1, true}}, kExchangeProvenLevel}));
}

TEST(Exchange, ConsumersDedupeTheRepublishedBacklog) {
  // A time-sliced PDR member re-publishes its F_∞ clauses at every budget,
  // so the board fills with copies. Each consumer *run* must assert (and
  // count) every distinct clause exactly once — and a fresh run (the next
  // slice, with fresh solvers) absorbs each distinct clause exactly once
  // more. This pins the slice counts the dedupe is meant to bound.
  auto task = designs::make_task("token_ring");
  std::uint32_t token_index = 0;
  for (std::uint32_t i = 0; i < task.ts.states().size(); ++i) {
    if (task.ts.states()[i].var->name() == "token") token_index = i;
  }

  auto mailbox = std::make_shared<LemmaMailbox>(2);
  const ExchangedClause mutex01{{{token_index, 0, false}, {token_index, 1, false}},
                               kExchangeProvenLevel};
  const ExchangedClause mutex02{{{token_index, 0, false}, {token_index, 2, false}},
                               kExchangeProvenLevel};
  mailbox->publish(0, mutex01);
  mailbox->publish(0, mutex01);  // re-published by a later slice
  mailbox->publish(0, mutex02);
  mailbox->publish(0, mutex01);  // and again
  ASSERT_EQ(mailbox->size(), 4u);

  EngineOptions options;
  options.max_steps = 4;
  options.exchange_mailbox = mailbox;
  options.exchange_slot = 1;
  auto first = make_engine(EngineKind::Bmc, task.ts, options);
  EXPECT_EQ(first->prove_all(task.target_exprs()).verdict, Verdict::Unknown);
  EXPECT_EQ(mailbox->absorbed_by(1), 2u);  // 2 distinct facts, not 4 entries

  // The next slice is a fresh engine: it re-reads the backlog and absorbs
  // the 2 distinct facts once more — linear in distinct clauses per slice,
  // no matter how many duplicates the board accumulates.
  auto second = make_engine(EngineKind::Bmc, task.ts, options);
  EXPECT_EQ(second->prove_all(task.target_exprs()).verdict, Verdict::Unknown);
  EXPECT_EQ(mailbox->absorbed_by(1), 4u);
}

// --- satellite regressions ---------------------------------------------------

TEST(Portfolio, ZeroStepBudgetIsUniformlyUnknown) {
  // A zero budget used to build a {0} slice schedule and run every member at
  // a zero bound; now both modes report Unknown without running anyone.
  auto task = counter_task("property bound; a != 4'd0; endproperty");  // fails at t0
  for (const bool threads : {true, false}) {
    EngineOptions options;
    options.max_steps = 0;
    options.portfolio_threads = threads;
    auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
    const EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Unknown) << "threads=" << threads;
    EXPECT_TRUE(result.winner.empty());
    ASSERT_EQ(result.breakdown.size(), 3u);
    for (const EngineBreakdown& member : result.breakdown) {
      EXPECT_EQ(member.note, "zero step budget");
      EXPECT_EQ(member.stats.sat_calls, 0u);
    }
  }
}

TEST(Portfolio, PowerOfTwoBudgetRunsTheFinalSliceOnce) {
  // max_steps = 2 must build the schedule {1, 2}, never {1, 2, 2}: a
  // duplicated final slice would silently re-run every member and inflate
  // SAT calls. (Pins the schedule invariant the dedupe guard protects.)
  auto run_with = [](std::size_t max_steps) {
    auto task = designs::make_task("sync_counters");  // every member stays Unknown
    EngineOptions options;
    options.max_steps = max_steps;
    options.portfolio_threads = false;
    options.exchange = false;  // keep the slice workloads identical
    auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
    return engine->prove_all(task.target_exprs());
  };
  const EngineResult two = run_with(2);
  const EngineResult three = run_with(3);  // schedule {1, 2, 3}
  EXPECT_EQ(two.verdict, Verdict::Unknown);
  // {1,2} must do strictly less SAT work than {1,2,3}; a duplicated final
  // slice at 2 would close most of that gap or invert it.
  EXPECT_LT(two.stats.sat_calls, three.stats.sat_calls);
}

TEST(WideRegisters, ElaborationRejectsWiderThan64WithLocation) {
  const std::string rtl = R"(module wide80 (input clk, rst, output logic [79:0] x);
  always_ff @(posedge clk) begin
    if (rst) x <= 0; else x <= x;
  end
endmodule
)";
  try {
    flow::VerificationTask::from_rtl("wide80", "", rtl, {{"t", "x == 0"}});
    FAIL() << "80-bit register must be rejected";
  } catch (const Error& e) {
    // Three layers can catch this (parser range check, elaborator
    // declaration check, NodeManager width discipline); whichever fires
    // must name the 64-bit limit, not corrupt state silently downstream.
    const std::string what = e.what();
    EXPECT_TRUE(what.find("wider than 64") != std::string::npos ||
                what.find("1..64") != std::string::npos ||
                what.find("[1,64]") != std::string::npos)
        << what;
  }
}

TEST(WideRegisters, SixtyFourBitBoundaryRunsThroughPdrStatePacking) {
  // Width 64 is the last legal width: PDR's extract_state packs bit 63 with
  // `1ULL << 63`, the edge of the uint64 value path. A falsifiable property
  // forces a counterexample through that packing.
  const std::string rtl = R"(module wide64 (input clk, rst, input logic [63:0] in,
                output logic [63:0] x);
  always_ff @(posedge clk) begin
    if (rst) x <= 64'd0; else x <= in;
  end
endmodule
)";
  auto task = flow::VerificationTask::from_rtl("wide64", "", rtl,
                                               {{"t", "!x[63]"}});
  EngineOptions options;
  options.max_steps = 4;
  auto pdr = make_engine(EngineKind::Pdr, task.ts, options);
  const EngineResult result = pdr->prove_all(task.target_exprs());
  EXPECT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.cex.has_value());
  EXPECT_TRUE(result.cex->is_consistent());
}

// --- lemma-file round trip ---------------------------------------------------

TEST(LemmaFile, PortfolioInvariantRoundTripsThroughLemmaManager) {
  auto task = designs::make_task("token_ring");
  auto engine = make_engine(EngineKind::Portfolio, task.ts, {.max_steps = 16});
  const EngineResult result = engine->prove_all(task.target_exprs());
  ASSERT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());

  std::vector<std::string> svas;
  for (const NodeRef clause : result.invariant) svas.push_back(ir::to_string(clause));
  const std::string path = testing::TempDir() + "genfv_portfolio_lemmas.txt";
  flow::write_lemma_file(path, task.name, svas);

  const std::vector<std::string> loaded = flow::read_lemma_file(path);
  ASSERT_EQ(loaded.size(), svas.size());

  // Re-ingestion re-proves every clause before assuming it.
  auto task2 = designs::make_task("token_ring");
  flow::LemmaManager manager(task2, {{.max_k = 8}, flow::ReviewPolicy{}, true});
  const auto outcomes = manager.process(loaded);
  ASSERT_EQ(outcomes.size(), loaded.size());
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.status == flow::CandidateStatus::Proven ||
                outcome.status == flow::CandidateStatus::Duplicate)
        << outcome.sva << " -> " << to_string(outcome.status);
  }
  EXPECT_FALSE(manager.lemma_exprs().empty());
}

TEST(LemmaFile, ParserSkipsCommentsAndBlankLines) {
  const std::string text =
      "# genfv-lemmas 1\n# design: x\n\n a == b \n\n# trailing comment\nc != d\n";
  const std::vector<std::string> lemmas = flow::parse_lemma_file(text);
  ASSERT_EQ(lemmas.size(), 2u);
  EXPECT_EQ(lemmas[0], "a == b");
  EXPECT_EQ(lemmas[1], "c != d");
}

TEST(LemmaFile, RenderRejectsLemmasThatCannotRoundTrip) {
  // A lemma that flattens to a blank or comment line would silently vanish
  // on re-parse; the writer must refuse instead.
  EXPECT_THROW(flow::render_lemma_file("d", {"a == b", "  \n  "}), UsageError);
  EXPECT_THROW(flow::render_lemma_file("d", {"# not a lemma"}), UsageError);
  EXPECT_THROW(flow::render_lemma_file("d", {""}), UsageError);
}

TEST(LemmaFile, CountHeaderRoundTripsAndDetectsTruncation) {
  const std::string text = flow::render_lemma_file("d", {"a == b", "c != d"});
  EXPECT_NE(text.find("# lemmas: 2"), std::string::npos);
  EXPECT_EQ(flow::parse_lemma_file(text).size(), 2u);

  // Drop the last line, as a truncated download or hand edit would.
  const std::string truncated = text.substr(0, text.rfind("c != d"));
  EXPECT_THROW(flow::parse_lemma_file(truncated), UsageError);
  EXPECT_THROW(flow::parse_lemma_file("# lemmas: nonsense\na == b\n"), UsageError);

  // Files without the header stay accepted (older emitters, hand-written).
  EXPECT_EQ(flow::parse_lemma_file("a == b\n").size(), 1u);
}

}  // namespace
}  // namespace genfv::mc

// --- flow-level engine selection ---------------------------------------------

namespace genfv::flow {
namespace {

/// Always-empty LLM: the flow must close without any model help.
class SilentLlm : public genai::LlmClient {
 public:
  genai::Completion complete(const genai::Prompt&) override {
    ++calls_;
    return {};
  }
  std::string model_name() const override { return "silent"; }
  std::size_t calls() const noexcept { return calls_; }

 private:
  std::size_t calls_ = 0;
};

TEST(FlowEngineSelection, PortfolioProvesTokenRingAndExportsLemmas) {
  auto task = designs::make_task("token_ring");
  SilentLlm llm;
  FlowOptions options;
  options.engine.max_k = 8;
  options.target_engine = mc::EngineKind::Portfolio;
  CexRepairFlow flow(llm, options);
  const FlowReport report = flow.run(task);

  EXPECT_EQ(report.engine, "portfolio");
  EXPECT_TRUE(report.all_targets_proven());
  EXPECT_EQ(llm.calls(), 0u);  // the portfolio's PDR member wins outright
  // The winner's inductive invariant comes back as admitted lemmas — the
  // bidirectional exchange works behind the portfolio façade too.
  EXPECT_FALSE(report.admitted_lemmas.empty());
}

}  // namespace
}  // namespace genfv::flow
