/// Portfolio engine tests: first-conclusive-verdict scheduling in both the
/// threaded and the deterministic time-sliced mode, cooperative stop-flag
/// cancellation of every member engine, system cloning across NodeManagers,
/// result translation back into the caller's system, the lemma-file round
/// trip through LemmaManager, and flow-level engine selection.

#include <gtest/gtest.h>

#include <atomic>

#include "designs/design.hpp"
#include "flow/cex_repair_flow.hpp"
#include "flow/lemma_io.hpp"
#include "flow/lemma_manager.hpp"
#include "genai/simulated_llm.hpp"
#include "ir/clone.hpp"
#include "ir/printer.hpp"
#include "mc/engine.hpp"
#include "mc/portfolio.hpp"
#include "sva/compiler.hpp"
#include "util/status.hpp"

namespace genfv::mc {
namespace {

using ir::NodeRef;

bool conclusive(Verdict v) { return v != Verdict::Unknown; }

/// Width-4 counter pair in lockstep; `bound_prop` makes a falsifiable
/// property available (`a != 10` fails at frame 10).
flow::VerificationTask counter_task(const std::string& property) {
  return flow::VerificationTask::from_rtl(
      "toy_counters", "two lockstep counters",
      R"(module toy_counters (input clk, rst, output logic [3:0] a, b);
  always_ff @(posedge clk) begin
    if (rst) begin
      a <= 4'b0;
      b <= 4'b0;
    end else begin
      a <= a + 1;
      b <= b + 1;
    end
  end
endmodule
)",
      {{"target", property}});
}

// --- SystemClone -------------------------------------------------------------

TEST(SystemClone, DeepCopyPreservesStructureAndRoundTripsExpressions) {
  auto task = designs::make_task("token_ring");
  ir::SystemClone clone(task.ts);
  const ir::TransitionSystem& copy = clone.system();

  EXPECT_NE(task.ts.nm_ptr().get(), copy.nm_ptr().get());
  ASSERT_EQ(copy.inputs().size(), task.ts.inputs().size());
  ASSERT_EQ(copy.states().size(), task.ts.states().size());
  ASSERT_EQ(copy.constraints().size(), task.ts.constraints().size());
  ASSERT_EQ(copy.num_properties(), task.ts.num_properties());
  copy.validate();

  // Declaration order and leaf identity carry over; every copied expression
  // translates back to the *pointer-identical* original node (hash-consing
  // makes structural equality pointer equality within one manager). Note the
  // serialized text may differ: commutative operands sort by node id, and
  // ids are manager-local.
  for (std::size_t i = 0; i < task.ts.states().size(); ++i) {
    const auto& orig = task.ts.states()[i];
    const auto& cloned = copy.states()[i];
    EXPECT_EQ(cloned.var->name(), orig.var->name());
    EXPECT_EQ(cloned.var->width(), orig.var->width());
    EXPECT_EQ(clone.to_original(cloned.next), orig.next);
    if (orig.init != nullptr) EXPECT_EQ(clone.to_original(cloned.init), orig.init);
  }
  for (std::size_t i = 0; i < task.ts.num_properties(); ++i) {
    EXPECT_EQ(clone.to_original(copy.property(i).expr), task.ts.property(i).expr);
  }
  for (const NodeRef expr : task.target_exprs()) {
    const NodeRef there = clone.to_clone(expr);
    EXPECT_NE(there, expr);
    EXPECT_EQ(clone.to_original(there), expr);
  }
}

TEST(SystemClone, TranslateRejectsUnmappedLeaves) {
  ir::TransitionSystem a;
  const NodeRef x = a.add_state("x", 4);
  ir::TransitionSystem b;
  std::unordered_map<NodeRef, NodeRef> empty_map;
  EXPECT_THROW(ir::translate(a.nm().mk_eq(x, a.nm().mk_const(0, 4)), b.nm(), empty_map),
               UsageError);
}

// --- cooperative cancellation ------------------------------------------------

TEST(StopFlag, PresetFlagYieldsUnknownForEveryEngine) {
  for (const EngineKind kind :
       {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr}) {
    auto task = designs::make_task("token_ring");
    EngineOptions options;
    options.max_steps = 64;
    options.stop = std::make_shared<std::atomic<bool>>(true);
    auto engine = make_engine(kind, task.ts, options);
    const EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Unknown) << to_string(kind);
    // A cancelled run must not have done any real exploration.
    EXPECT_LE(result.depth, 1u) << to_string(kind);
  }
}

TEST(Portfolio, WinnerCancelsLosers) {
  // At an absurd step budget, BMC alone would unroll for a very long time;
  // the only way it reports far fewer frames is the winner's stop flag.
  auto task = designs::make_task("token_ring");
  EngineOptions options;
  options.max_steps = 100000;
  auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
  const EngineResult result = engine->prove_all(task.target_exprs());

  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_EQ(result.winner, "pdr");
  ASSERT_EQ(result.breakdown.size(), 3u);
  for (const EngineBreakdown& member : result.breakdown) {
    if (member.engine == "bmc") {
      EXPECT_EQ(member.verdict, Verdict::Unknown);
      EXPECT_LT(member.depth, 100000u);  // cancelled, not exhausted
    }
  }
}

TEST(Portfolio, ExternalStopCancelsTheWholeRace) {
  auto task = designs::make_task("token_ring");
  EngineOptions options;
  options.max_steps = 64;
  options.stop = std::make_shared<std::atomic<bool>>(true);  // pre-cancelled
  for (const bool threads : {true, false}) {
    options.portfolio_threads = threads;
    auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
    const EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Unknown) << "threads=" << threads;
    EXPECT_TRUE(result.winner.empty()) << "threads=" << threads;
  }
}

// --- first-conclusive-verdict scheduling -------------------------------------

TEST(Portfolio, AgreesWithSingleEnginesOnTheRegistry) {
  const std::vector<std::string> names = {"sync_counters", "sequencer", "token_ring",
                                          "updown_pair",   "lfsr16",    "gray_counter"};
  constexpr std::size_t kMaxSteps = 12;
  for (const std::string& name : names) {
    std::optional<Verdict> single_conclusive;
    for (const EngineKind kind :
         {EngineKind::Bmc, EngineKind::KInduction, EngineKind::Pdr}) {
      auto task = designs::make_task(name);
      auto engine = make_engine(kind, task.ts, {.max_steps = kMaxSteps});
      const EngineResult r = engine->prove_all(task.target_exprs());
      if (conclusive(r.verdict)) {
        // Soundness: conclusive single-engine verdicts can never disagree.
        if (single_conclusive.has_value()) EXPECT_EQ(*single_conclusive, r.verdict);
        single_conclusive = r.verdict;
      }
    }
    for (const bool threads : {true, false}) {
      auto task = designs::make_task(name);
      EngineOptions options;
      options.max_steps = kMaxSteps;
      options.portfolio_threads = threads;
      auto portfolio = make_engine(EngineKind::Portfolio, task.ts, options);
      const EngineResult r = portfolio->prove_all(task.target_exprs());
      if (single_conclusive.has_value()) {
        EXPECT_EQ(r.verdict, *single_conclusive)
            << name << " threads=" << threads;
        EXPECT_FALSE(r.winner.empty()) << name;
      } else {
        EXPECT_EQ(r.verdict, Verdict::Unknown) << name << " threads=" << threads;
        EXPECT_TRUE(r.winner.empty()) << name;
      }
      EXPECT_EQ(r.breakdown.size(), 3u) << name;
    }
  }
}

TEST(Portfolio, FalsifiedCexTranslatesBackToTheOriginalSystem) {
  auto task = counter_task("property bound; a != 4'd10; endproperty");
  EngineOptions options;
  options.max_steps = 16;
  auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
  const EngineResult result = engine->prove_all(task.target_exprs());

  EXPECT_EQ(result.verdict, Verdict::Falsified);
  ASSERT_TRUE(result.cex.has_value());
  // The trace must be expressed over the *caller's* system (the threaded
  // portfolio found it on a clone) and be a genuine execution of it.
  EXPECT_EQ(result.cex->system(), &task.ts);
  EXPECT_TRUE(result.cex->is_consistent());
  const NodeRef target = task.target_exprs().front();
  ASSERT_TRUE(result.cex->first_violation(target).has_value());
}

TEST(Portfolio, TimeSlicedIsDeterministic) {
  auto run_once = [] {
    auto task = designs::make_task("token_ring");
    EngineOptions options;
    options.max_steps = 16;
    options.portfolio_threads = false;
    auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
    return engine->prove_all(task.target_exprs());
  };
  const EngineResult a = run_once();
  const EngineResult b = run_once();
  EXPECT_EQ(a.verdict, Verdict::Proven);
  EXPECT_EQ(a.winner, "pdr");
  EXPECT_EQ(a.verdict, b.verdict);
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.stats.sat_calls, b.stats.sat_calls);
  EXPECT_EQ(a.invariant.size(), b.invariant.size());
}

TEST(Portfolio, SeededLemmasReachEveryMemberClone) {
  // sync_counters is not inductive and not clause-compact, so no member
  // concludes alone at this bound; with the equality lemma translated into
  // every clone, k-induction closes immediately.
  auto task = designs::make_task("sync_counters");
  sva::PropertyCompiler compiler(task.ts);
  const NodeRef lemma = compiler.compile_expr("count1 == count2");

  EngineOptions options;
  options.max_steps = 6;
  options.lemmas = {lemma};
  auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
  const EngineResult result = engine->prove_all(task.target_exprs());
  EXPECT_EQ(result.verdict, Verdict::Proven);
  EXPECT_FALSE(result.winner.empty());
}

TEST(Portfolio, RejectsItselfAsMember) {
  auto task = designs::make_task("token_ring");
  EngineOptions options;
  options.portfolio_engines = {EngineKind::Pdr, EngineKind::Portfolio};
  EXPECT_THROW(make_engine(EngineKind::Portfolio, task.ts, options), UsageError);
}

TEST(Portfolio, UnknownRaceForwardsAStepCexForTheRepairLoop) {
  // No member concludes on sync_counters without help, but k-induction
  // produces the induction-step artefact — the portfolio must forward it so
  // the GenAI repair loop stays usable behind EngineKind::Portfolio.
  auto task = designs::make_task("sync_counters");
  EngineOptions options;
  options.max_steps = 4;
  for (const bool threads : {true, false}) {
    options.portfolio_threads = threads;
    auto engine = make_engine(EngineKind::Portfolio, task.ts, options);
    const EngineResult result = engine->prove_all(task.target_exprs());
    EXPECT_EQ(result.verdict, Verdict::Unknown) << "threads=" << threads;
    ASSERT_TRUE(result.step_cex.has_value()) << "threads=" << threads;
    EXPECT_GT(result.step_cex->size(), 0u);
  }
}

// --- lemma-file round trip ---------------------------------------------------

TEST(LemmaFile, PortfolioInvariantRoundTripsThroughLemmaManager) {
  auto task = designs::make_task("token_ring");
  auto engine = make_engine(EngineKind::Portfolio, task.ts, {.max_steps = 16});
  const EngineResult result = engine->prove_all(task.target_exprs());
  ASSERT_EQ(result.verdict, Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());

  std::vector<std::string> svas;
  for (const NodeRef clause : result.invariant) svas.push_back(ir::to_string(clause));
  const std::string path = testing::TempDir() + "genfv_portfolio_lemmas.txt";
  flow::write_lemma_file(path, task.name, svas);

  const std::vector<std::string> loaded = flow::read_lemma_file(path);
  ASSERT_EQ(loaded.size(), svas.size());

  // Re-ingestion re-proves every clause before assuming it.
  auto task2 = designs::make_task("token_ring");
  flow::LemmaManager manager(task2, {{.max_k = 8}, flow::ReviewPolicy{}, true});
  const auto outcomes = manager.process(loaded);
  ASSERT_EQ(outcomes.size(), loaded.size());
  for (const auto& outcome : outcomes) {
    EXPECT_TRUE(outcome.status == flow::CandidateStatus::Proven ||
                outcome.status == flow::CandidateStatus::Duplicate)
        << outcome.sva << " -> " << to_string(outcome.status);
  }
  EXPECT_FALSE(manager.lemma_exprs().empty());
}

TEST(LemmaFile, ParserSkipsCommentsAndBlankLines) {
  const std::string text =
      "# genfv-lemmas 1\n# design: x\n\n a == b \n\n# trailing comment\nc != d\n";
  const std::vector<std::string> lemmas = flow::parse_lemma_file(text);
  ASSERT_EQ(lemmas.size(), 2u);
  EXPECT_EQ(lemmas[0], "a == b");
  EXPECT_EQ(lemmas[1], "c != d");
}

}  // namespace
}  // namespace genfv::mc

// --- flow-level engine selection ---------------------------------------------

namespace genfv::flow {
namespace {

/// Always-empty LLM: the flow must close without any model help.
class SilentLlm : public genai::LlmClient {
 public:
  genai::Completion complete(const genai::Prompt&) override {
    ++calls_;
    return {};
  }
  std::string model_name() const override { return "silent"; }
  std::size_t calls() const noexcept { return calls_; }

 private:
  std::size_t calls_ = 0;
};

TEST(FlowEngineSelection, PortfolioProvesTokenRingAndExportsLemmas) {
  auto task = designs::make_task("token_ring");
  SilentLlm llm;
  FlowOptions options;
  options.engine.max_k = 8;
  options.target_engine = mc::EngineKind::Portfolio;
  CexRepairFlow flow(llm, options);
  const FlowReport report = flow.run(task);

  EXPECT_EQ(report.engine, "portfolio");
  EXPECT_TRUE(report.all_targets_proven());
  EXPECT_EQ(llm.calls(), 0u);  // the portfolio's PDR member wins outright
  // The winner's inductive invariant comes back as admitted lemmas — the
  // bidirectional exchange works behind the portfolio façade too.
  EXPECT_FALSE(report.admitted_lemmas.empty());
}

}  // namespace
}  // namespace genfv::flow
