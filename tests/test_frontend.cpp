/// Frontend tests: the AIGER + BTOR2 readers against the committed golden
/// corpus (tests/corpus/), the malformed-input table (every row must raise a
/// *located* ParseError, never crash), the AIGER writer round-trip over the
/// whole design zoo, a lemma-file name round-trip for frontend-sourced
/// systems, and a seeded differential fuzz harness: random AIGER net-lists
/// are cross-validated against an independent reference simulator and the
/// BMC / PDR engines must agree on every generated design.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "designs/design.hpp"
#include "flow/lemma_io.hpp"
#include "flow/lemma_manager.hpp"
#include "flow/session.hpp"
#include "frontend/aiger.hpp"
#include "frontend/btor2.hpp"
#include "frontend/symbols.hpp"
#include "ir/printer.hpp"
#include "mc/engine.hpp"
#include "sim/interpreter.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace genfv::frontend {
namespace {

std::string corpus_path(const std::string& file) {
  return std::string(GENFV_TEST_CORPUS_DIR) + "/" + file;
}

mc::Verdict run_engine(mc::EngineKind kind, flow::VerificationTask& task,
                       std::size_t max_steps) {
  mc::EngineOptions options;
  options.max_steps = max_steps;
  auto engine = mc::make_engine(kind, task.ts, options);
  return engine->prove_all(task.target_exprs()).verdict;
}

// --- symbol hygiene ----------------------------------------------------------

TEST(FrontendSymbols, SanitizeProducesLegalIdentifiers) {
  EXPECT_EQ(SymbolTable::sanitize("data[3].q"), "data_3__q");
  EXPECT_EQ(SymbolTable::sanitize("ok_name"), "ok_name");
  EXPECT_EQ(SymbolTable::sanitize("2fast"), "_2fast");
  EXPECT_EQ(SymbolTable::sanitize(""), "");
  EXPECT_EQ(SymbolTable::sanitize("___"), "");  // no information survives
}

TEST(FrontendSymbols, ClaimDeduplicatesAndSynthesizes) {
  SymbolTable table;
  EXPECT_EQ(table.claim("x", "in_", 0), "x");
  EXPECT_EQ(table.claim("x", "in_", 1), "x_2");
  EXPECT_EQ(table.claim("", "in_", 2), "in_2");
  EXPECT_EQ(table.claim("in_2", "in_", 3), "in_2_2");  // collision with synthesized
}

// --- golden corpus -----------------------------------------------------------

struct GoldenRow {
  const char* file;
  std::size_t inputs;
  std::size_t states;
  std::size_t properties;
  mc::Verdict bmc;
  mc::Verdict pdr;
};

TEST(FrontendCorpus, GoldenCountsAndVerdicts) {
  // Counts and verdicts are pinned: a parser change that silently drops a
  // latch or flips a verdict fails here before it reaches the benches.
  const std::vector<GoldenRow> rows = {
      {"toggle_cex.aag", 0, 1, 1, mc::Verdict::Falsified, mc::Verdict::Falsified},
      {"updown_pair_rt.aag", 2, 24, 1, mc::Verdict::Unknown, mc::Verdict::Proven},
      {"token_ring_rt.aag", 5, 8, 1, mc::Verdict::Unknown, mc::Verdict::Proven},
      {"lfsr16_rt.aig", 1, 16, 1, mc::Verdict::Unknown, mc::Verdict::Unknown},
      {"counter_wrap.btor2", 0, 1, 1, mc::Verdict::Unknown, mc::Verdict::Proven},
      {"toggle_bad.btor2", 0, 1, 1, mc::Verdict::Falsified, mc::Verdict::Falsified},
      {"rotate_onehot.btor2", 0, 1, 2, mc::Verdict::Unknown, mc::Verdict::Proven},
      {"rot_barrel.btor2", 0, 2, 2, mc::Verdict::Unknown, mc::Verdict::Proven},
      {"sdiv_props.btor2", 1, 1, 2, mc::Verdict::Unknown, mc::Verdict::Proven},
  };
  for (const GoldenRow& row : rows) {
    SCOPED_TRACE(row.file);
    auto task = flow::VerificationTask::from_file(corpus_path(row.file));
    EXPECT_EQ(task.ts.inputs().size(), row.inputs);
    EXPECT_EQ(task.ts.states().size(), row.states);
    EXPECT_EQ(task.ts.num_properties(), row.properties);
    EXPECT_EQ(task.target_indices.size(), row.properties);
    EXPECT_EQ(run_engine(mc::EngineKind::Bmc, task, 12), row.bmc);
    EXPECT_EQ(run_engine(mc::EngineKind::Pdr, task, 12), row.pdr);
  }
}

TEST(FrontendCorpus, PropertyNamesAreStable) {
  // Named properties keep their (sanitized) names; anonymous ones get the
  // positional bad_N fallback — the anchor for --property overrides and
  // lemma files.
  auto named = flow::VerificationTask::from_file(corpus_path("counter_wrap.btor2"));
  EXPECT_EQ(named.ts.property(0).name, "count_hits_seven");

  auto pair = flow::VerificationTask::from_file(corpus_path("rotate_onehot.btor2"));
  ASSERT_EQ(pair.ts.num_properties(), 2u);
  EXPECT_EQ(pair.ts.property(0).name, "ring_dead");
  EXPECT_EQ(pair.ts.property(1).name, "rebuild_mismatch");

  auto symbols = flow::VerificationTask::from_file(corpus_path("toggle_cex.aag"));
  EXPECT_EQ(symbols.ts.property(0).name, "toggles_high");
  EXPECT_NE(symbols.ts.lookup("latch"), nullptr);

  auto anonymous = parse_aiger("aag 1 0 1 0 0 1\n2 3 0\n2\n");
  EXPECT_EQ(anonymous.property(0).name, "bad_0");
  EXPECT_NE(anonymous.lookup("latch_0"), nullptr);
}

TEST(FrontendCorpus, UglySymbolNamesBecomeLegalIdentifiers) {
  // HWMCC symbol names carry brackets and dots; they must come out as legal
  // SVA identifiers or lemma files over this design would not re-parse.
  const std::string text =
      "aag 1 0 1 0 0 1\n2 3 0\n2\nl0 regs[3].q\nb0 bad!state\n";
  ir::TransitionSystem ts = parse_aiger(text);
  EXPECT_NE(ts.lookup("regs_3__q"), nullptr);
  EXPECT_EQ(ts.property(0).name, "bad_state");
}

TEST(FrontendCorpus, OutputsBecomeBadsOnlyWithoutBSection) {
  // AIGER 1.0 files (no B count) follow the HWMCC'10 convention: outputs
  // are the bad-state literals.
  ir::TransitionSystem v10 = parse_aiger("aag 1 0 1 1 0\n2 3 0\n2\n");
  EXPECT_EQ(v10.num_properties(), 1u);
  EXPECT_TRUE(v10.signals().empty());

  // With an explicit (even zero) B section, outputs stay named signals.
  ir::TransitionSystem v19 = parse_aiger("aag 1 0 1 1 0 0\n2 3 0\n2\n");
  EXPECT_EQ(v19.num_properties(), 0u);
  EXPECT_EQ(v19.signals().size(), 1u);
}

TEST(FrontendCorpus, NextlessStatesSynthesizeInputsInDeclarationOrder) {
  // States without `next` become fresh inputs; their positions must follow
  // declaration order, not unordered_map iteration order, or input columns
  // (and --dump-aiger output) would vary across standard libraries.
  const std::string text =
      "1 sort bitvec 1\n"
      "2 state 1 b\n"
      "3 state 1 a\n"
      "4 state 1 c\n"
      "5 next 1 4 2\n";
  ir::TransitionSystem ts = parse_btor2(text);
  ASSERT_EQ(ts.inputs().size(), 2u);
  EXPECT_EQ(ts.inputs()[0]->name(), "b_next");
  EXPECT_EQ(ts.inputs()[1]->name(), "a_next");
}

// --- malformed inputs --------------------------------------------------------

struct MalformedRow {
  const char* label;
  const char* text;
  const char* expect;  ///< substring of the ParseError message
};

void expect_located_error(const std::string& file,
                          const std::vector<MalformedRow>& rows,
                          ir::TransitionSystem (*parse)(std::string_view,
                                                        const std::string&)) {
  for (const MalformedRow& row : rows) {
    SCOPED_TRACE(row.label);
    try {
      (void)parse(row.text, file);
      FAIL() << "expected ParseError, parsed successfully";
    } catch (const ParseError& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find(row.expect), std::string::npos)
          << "message was: " << message;
      // Every error is located: "file:line" (or "file:<byte N>" for the
      // binary gate section).
      EXPECT_EQ(message.rfind(file + ":", 0), 0u) << "message was: " << message;
    }
  }
}

TEST(FrontendErrors, AigerMalformedTable) {
  const std::vector<MalformedRow> rows = {
      {"empty file", "", "empty file"},
      {"whitespace only", " \n\t\r\n", "empty file"},
      {"bad magic", "agg 1 0 0 0 0\n", "not an AIGER file"},
      {"truncated header", "aag 1 0\n", "truncated header"},
      {"non-numeric count", "aag x 0 0 0 0\n", "non-numeric"},
      {"inconsistent header", "aag 1 2 0 0 0\n2\n4\n", "exceeds M"},
      {"dangling output literal", "aag 1 0 0 1 0\n6\n", "dangling"},
      {"odd input literal", "aag 1 1 0 0 0\n3\n", "must be even"},
      {"latch missing next", "aag 1 0 1 0 0\n2\n", "missing its next-state"},
      {"bad latch reset", "aag 1 0 1 0 0\n2 2 3\n", "latch reset must be 0, 1"},
      {"gate line too short", "aag 2 0 0 0 2\n2 1\n4 2 2\n", "'lhs rhs0 rhs1'"},
      {"combinational cycle", "aag 2 0 0 1 2\n2\n2 4 4\n4 2 2\n",
       "combinational cycle"},
      {"justice section", "aag 0 0 0 0 0 0 0 1\n", "justice/fairness"},
      {"binary gate section truncated", "aig 1 0 0 1 1\n2\n",
       "end of binary gate section"},
      // The I + L + A sum wraps around 2^64; a naive consistency check
      // passes and the binary prelude writes far out of bounds.
      {"wrapping binary header",
       "aig 3 9223372036854775808 9223372036854775808 0 0\n", "exceeds M"},
      {"wrapping ascii header",
       "aag 3 9223372036854775808 0 0 9223372036854775810\n", "exceeds M"},
  };
  expect_located_error("t.aag", rows, &parse_aiger);
}

TEST(FrontendErrors, Btor2MalformedTable) {
  const std::vector<MalformedRow> rows = {
      {"empty file", "", "empty file"},
      {"comments only", "; nothing here\n", "empty file"},
      {"wide sort", "1 sort bitvec 65\n", "supported widths are 1..64"},
      {"zero-width sort", "1 sort bitvec 0\n", "supported widths are 1..64"},
      {"array sort", "1 sort array 2 2\n", "array sorts are not supported"},
      {"non-numeric id", "x sort bitvec 1\n", "non-numeric"},
      {"unknown operator", "1 sort bitvec 1\n2 frobnicate 1\n",
       "unknown BTOR2 operator"},
      {"undefined node", "1 sort bitvec 1\n2 not 1 5\n", "undefined node"},
      {"undefined sort", "2 zero 7\n", "undefined sort"},
      {"duplicate id", "1 sort bitvec 1\n1 sort bitvec 1\n", "defined twice"},
      {"duplicate next",
       "1 sort bitvec 1\n2 zero 1\n3 state 1\n4 next 1 3 2\n5 next 1 3 2\n",
       "duplicate next"},
      {"wide bad", "1 sort bitvec 2\n2 zero 1\n3 bad 2\n", "width 1"},
      {"reversed slice", "1 sort bitvec 4\n2 sort bitvec 2\n3 zero 1\n"
                         "4 slice 2 3 1 2\n",
       "reversed"},
      {"width mismatch",
       "1 sort bitvec 2\n2 sort bitvec 3\n3 zero 1\n4 zero 2\n5 add 1 3 4\n",
       "widths differ"},
      {"justice", "1 sort bitvec 1\n2 input 1\n3 justice 1 2\n",
       "not supported"},
      {"signed division overflow", "1 sort bitvec 4\n2 one 1\n3 sdivo 1 2 2\n",
       "not supported"},
      {"rotate width mismatch",
       "1 sort bitvec 4\n2 sort bitvec 2\n3 zero 1\n4 zero 2\n5 rol 1 3 4\n",
       "widths differ"},
      {"smod width mismatch",
       "1 sort bitvec 4\n2 sort bitvec 2\n3 zero 1\n4 zero 2\n5 smod 1 3 4\n",
       "widths differ"},
      {"sdiv missing operand", "1 sort bitvec 4\n2 one 1\n3 sdiv 1 2\n",
       "<id> <op> <sort> <a> <b>"},
      {"binary constant wrong length", "1 sort bitvec 4\n2 const 1 101\n",
       "sort is 4 bits"},
      {"constant overflow", "1 sort bitvec 3\n2 constd 1 9\n",
       "does not fit"},
  };
  expect_located_error("t.btor2", rows, &parse_btor2);
}

// --- writer round-trip -------------------------------------------------------

std::size_t total_bits(const std::vector<ir::NodeRef>& nodes) {
  std::size_t bits = 0;
  for (const ir::NodeRef node : nodes) bits += node->width();
  return bits;
}

/// The round-tripped system names each bit of a word-level leaf
/// `<name>_<bit>` (plain `<name>` at width 1).
ir::NodeRef bit_of(const ir::TransitionSystem& rt, const ir::NodeRef leaf,
                   unsigned bit) {
  const std::string name = leaf->width() == 1
                               ? leaf->name()
                               : leaf->name() + "_" + std::to_string(bit);
  const ir::NodeRef node = rt.lookup(name);
  EXPECT_NE(node, nullptr) << "missing round-trip leaf " << name;
  return node;
}

/// Drive the original word-level system and its bit-blasted round-trip with
/// identical stimulus and require bit-identical state trajectories and
/// property values at every step.
void expect_sim_equivalent(const ir::TransitionSystem& ts,
                           const ir::TransitionSystem& rt, std::uint64_t seed,
                           std::size_t steps) {
  util::Xoshiro256 rng(seed);
  sim::Assignment env, rt_env;
  auto set_bits = [&](const ir::NodeRef leaf, std::uint64_t value) {
    env[leaf] = value;
    for (unsigned b = 0; b < leaf->width(); ++b) {
      rt_env[bit_of(rt, leaf, b)] = (value >> b) & 1;
    }
  };
  for (const ir::StateVar& sv : ts.states()) {
    // Unconstrained initial values stay unconstrained through the writer;
    // drive both sides with the same random choice.
    const std::uint64_t value =
        sv.init != nullptr ? sim::evaluate(sv.init, {}) : rng.bits(sv.var->width());
    set_bits(sv.var, value);
  }
  for (std::size_t step = 0; step < steps; ++step) {
    for (const ir::NodeRef input : ts.inputs()) {
      set_bits(input, rng.bits(input->width()));
    }
    for (std::size_t p = 0; p < ts.num_properties(); ++p) {
      ASSERT_EQ(sim::evaluate(ts.property(p).expr, env),
                sim::evaluate(rt.property(p).expr, rt_env))
          << "property " << ts.property(p).name << " diverges at step " << step;
    }
    const sim::Assignment next = sim::step(ts, env);
    const sim::Assignment rt_next = sim::step(rt, rt_env);
    for (const ir::StateVar& sv : ts.states()) {
      env[sv.var] = next.at(sv.var);
      for (unsigned b = 0; b < sv.var->width(); ++b) {
        const ir::NodeRef rt_bit = bit_of(rt, sv.var, b);
        rt_env[rt_bit] = rt_next.at(rt_bit);
      }
    }
    // Trajectories must stay bit-identical, not just property-equivalent.
    for (const ir::StateVar& sv : ts.states()) {
      for (unsigned b = 0; b < sv.var->width(); ++b) {
        ASSERT_EQ((env[sv.var] >> b) & 1, rt_env[bit_of(rt, sv.var, b)])
            << sv.var->name() << " bit " << b << " diverges at step " << step;
      }
    }
  }
}

TEST(FrontendRoundTrip, EveryZooDesignSurvivesWriterReaderLoop) {
  // Pinned verdict-equivalence bounds. dual_accumulator's bit-blasted
  // multiplier makes the k>=3 induction queries explode (minutes, not ms),
  // so its bound sits where both sides still answer quickly; the comparison
  // is identical-verdict, not proven-verdict, so a low bound loses nothing.
  auto pinned_bound = [](const std::string& name) -> std::size_t {
    if (name == "dual_accumulator") return 2;
    if (name == "fifo_ctrl") return 6;
    return 12;
  };
  for (const auto& info : designs::all_designs()) {
    SCOPED_TRACE(info.name);
    auto task = designs::make_task(info.name);
    const std::string aag = write_aiger(task.ts);
    ir::TransitionSystem rt = parse_aiger(aag, info.name + ".aag");

    // Structural equivalence: one AIGER object per bit of every leaf, one
    // bad-state literal per Target property.
    EXPECT_EQ(rt.inputs().size(), total_bits(task.ts.inputs()));
    std::vector<ir::NodeRef> state_vars;
    for (const ir::StateVar& sv : task.ts.states()) state_vars.push_back(sv.var);
    EXPECT_EQ(rt.states().size(), total_bits(state_vars));
    EXPECT_EQ(rt.num_properties(), task.target_indices.size());
    for (std::size_t t = 0; t < task.target_indices.size(); ++t) {
      EXPECT_EQ(rt.property(t).name,
                task.ts.property(task.target_indices[t]).name);
    }

    expect_sim_equivalent(task.ts, rt, /*seed=*/7 + task.target_indices.size(),
                          /*steps=*/20);

    // The properties re-prove with identical verdicts at the pinned bound.
    auto rt_task = flow::VerificationTask{};
    rt_task.name = info.name + "_rt";
    rt_task.ts = std::move(rt);
    for (std::size_t i = 0; i < rt_task.ts.num_properties(); ++i) {
      rt_task.target_indices.push_back(i);
    }
    const std::size_t bound = pinned_bound(info.name);
    EXPECT_EQ(run_engine(mc::EngineKind::Portfolio, task, bound),
              run_engine(mc::EngineKind::Portfolio, rt_task, bound));
  }
}

TEST(FrontendRoundTrip, BinaryWriterMatchesAsciiWriterOverTheZoo) {
  // write_aiger_binary must encode the *same* model as write_aiger: parse
  // both renderings and require the re-rendered ASCII to be byte-identical
  // (same structure, names and property order), plus lockstep-simulation
  // equivalence of the binary round trip against the original system.
  for (const auto& info : designs::all_designs()) {
    SCOPED_TRACE(info.name);
    auto task = designs::make_task(info.name);
    const std::string aag = write_aiger(task.ts);
    const std::string aig = write_aiger_binary(task.ts);
    ASSERT_EQ(aig.compare(0, 4, "aig "), 0);
    EXPECT_LT(aig.size(), aag.size());  // the delta encoding must actually pay

    ir::TransitionSystem from_ascii = parse_aiger(aag, info.name + ".aag");
    ir::TransitionSystem from_binary = parse_aiger(aig, info.name + ".aig");
    EXPECT_EQ(write_aiger(from_ascii), write_aiger(from_binary));
    expect_sim_equivalent(task.ts, from_binary,
                          /*seed=*/31 + task.target_indices.size(), /*steps=*/20);
  }
}

TEST(FrontendRoundTrip, WriterFileDispatchPicksBinaryForAigExtension) {
  // write_aiger_file routes on extension, which is what --dump-aiger and
  // corpus generation rely on now that the conversion script is gone.
  auto task = designs::make_task("sync_counters");
  const std::string aag_path = testing::TempDir() + "genfv_writer_rt.aag";
  const std::string aig_path = testing::TempDir() + "genfv_writer_rt.aig";
  write_aiger_file(aag_path, task.ts);
  write_aiger_file(aig_path, task.ts);
  ir::TransitionSystem from_ascii = read_aiger_file(aag_path);
  ir::TransitionSystem from_binary = read_aiger_file(aig_path);
  EXPECT_EQ(write_aiger(from_ascii), write_aiger(from_binary));
}

TEST(FrontendRoundTrip, WriterPreservesNamedSignalsAsOutputs) {
  // A 1.9 file's O section must survive a parse -> write -> parse loop: the
  // writer emits signals as outputs with o-symbols and always includes the B
  // field so the reader never reinterprets them as bad literals.
  const std::string text = "aag 1 0 1 1 0 1\n2 3 0\n2\n3\nl0 reg\no0 probe\nb0 stuck\n";
  ir::TransitionSystem ts = parse_aiger(text);
  ASSERT_EQ(ts.signals().size(), 1u);

  const std::string aag = write_aiger(ts);
  ir::TransitionSystem rt = parse_aiger(aag, "rt.aag");
  ASSERT_EQ(rt.signals().size(), 1u);
  EXPECT_EQ(rt.signals()[0].first, "probe");
  EXPECT_EQ(rt.num_properties(), 1u);
  EXPECT_EQ(rt.property(0).name, "stuck");

  // Signals alone (no properties) must still round-trip as signals, which
  // requires an explicit zero B field in the emitted header.
  ir::TransitionSystem no_bads = parse_aiger("aag 1 0 1 1 0 0\n2 3 0\n2\no0 probe\n");
  ir::TransitionSystem no_bads_rt = parse_aiger(write_aiger(no_bads), "rt.aag");
  EXPECT_EQ(no_bads_rt.num_properties(), 0u);
  ASSERT_EQ(no_bads_rt.signals().size(), 1u);
  EXPECT_EQ(no_bads_rt.signals()[0].first, "probe");
}

TEST(FrontendRoundTrip, UnsanitizableAndDuplicatePropertyNamesStillRoundTrip) {
  // A property whose name sanitizes to nothing must come out as a stable
  // synthesized bad_N symbol (not an unnamed 'b0' line the reader rejects),
  // and duplicate property names must resolve identically on both sides.
  ir::TransitionSystem ts = parse_aiger("aag 1 0 1 0 0 2\n2 3 0\n2\n3\n");
  ASSERT_EQ(ts.num_properties(), 2u);
  ts.property(0).name = "!!!";   // sanitizes to empty
  ts.property(1).name = "bad_0"; // collides with the synthesized fallback

  const std::string aag = write_aiger(ts);
  ir::TransitionSystem rt = parse_aiger(aag, "rt.aag");
  ASSERT_EQ(rt.num_properties(), 2u);
  EXPECT_EQ(rt.property(0).name, "bad_0");
  EXPECT_EQ(rt.property(1).name, "bad_0_2");
  // And the emitted names already match: a second trip is byte-stable.
  ir::TransitionSystem rt2 = parse_aiger(write_aiger(rt), "rt2.aag");
  EXPECT_EQ(rt2.property(0).name, "bad_0");
  EXPECT_EQ(rt2.property(1).name, "bad_0_2");
}

// --- lemma-file name round-trip ---------------------------------------------

TEST(FrontendLemmas, InvariantClausesRoundTripThroughLemmaFile) {
  // PDR proves a frontend-sourced design, its invariant clauses (written in
  // terms of frontend-synthesized names) go out through the lemma-file
  // format and must come back re-provable — the full --emit-lemmas /
  // --use-lemmas loop for parsed designs.
  auto task = flow::VerificationTask::from_file(corpus_path("token_ring_rt.aag"));
  mc::EngineOptions options;
  options.max_steps = 12;
  auto engine = mc::make_engine(mc::EngineKind::Pdr, task.ts, options);
  const mc::EngineResult result = engine->prove_all(task.target_exprs());
  ASSERT_EQ(result.verdict, mc::Verdict::Proven);
  ASSERT_FALSE(result.invariant.empty());

  std::vector<std::string> svas;
  for (const ir::NodeRef clause : result.invariant) {
    svas.push_back(ir::to_string(clause));
  }
  const std::string file_text = flow::render_lemma_file(task.name, svas);
  const std::vector<std::string> texts = flow::parse_lemma_file(file_text);
  ASSERT_EQ(texts.size(), svas.size());

  flow::LemmaManagerOptions lm_options;
  lm_options.engine.max_k = 12;
  flow::LemmaManager manager(task, lm_options);
  manager.process(texts);
  EXPECT_EQ(manager.lemma_exprs().size(), texts.size())
      << "an invariant clause failed to re-parse or re-prove";
}

// --- differential fuzz -------------------------------------------------------

/// A random (but well-formed) AIGER net-list in standard variable order.
struct RandomAig {
  unsigned num_inputs = 0;
  unsigned num_latches = 0;
  /// Per latch: {next literal, reset (0 / 1 / 2 == uninitialized)}.
  std::vector<std::array<unsigned, 2>> latches;
  /// Per gate: {rhs0, rhs1}; gate g defines variable I + L + 1 + g and only
  /// references earlier variables, so the net-list is acyclic by
  /// construction.
  std::vector<std::array<unsigned, 2>> gates;
  unsigned bad_lit = 0;

  unsigned num_vars() const {
    return num_inputs + num_latches + static_cast<unsigned>(gates.size());
  }

  std::string to_ascii() const {
    std::string out = "aag " + std::to_string(num_vars()) + " " +
                      std::to_string(num_inputs) + " " +
                      std::to_string(num_latches) + " 0 " +
                      std::to_string(gates.size()) + " 1\n";
    for (unsigned i = 0; i < num_inputs; ++i) {
      out += std::to_string(2 * (i + 1)) + "\n";
    }
    for (unsigned l = 0; l < num_latches; ++l) {
      const unsigned lit = 2 * (num_inputs + 1 + l);
      out += std::to_string(lit) + " " + std::to_string(latches[l][0]);
      out += " " + std::to_string(latches[l][1] == 2 ? lit : latches[l][1]);
      out += "\n";
    }
    out += std::to_string(bad_lit) + "\n";
    for (std::size_t g = 0; g < gates.size(); ++g) {
      const unsigned lhs = 2 * (num_inputs + num_latches + 1 + static_cast<unsigned>(g));
      out += std::to_string(lhs) + " " + std::to_string(gates[g][0]) + " " +
             std::to_string(gates[g][1]) + "\n";
    }
    return out;
  }

  /// The same net-list in the binary format (delta-encoded gate section),
  /// so every fuzz seed also exercises the varint decoder.
  std::string to_binary() const {
    std::string out = "aig " + std::to_string(num_vars()) + " " +
                      std::to_string(num_inputs) + " " +
                      std::to_string(num_latches) + " 0 " +
                      std::to_string(gates.size()) + " 1\n";
    for (unsigned l = 0; l < num_latches; ++l) {
      const unsigned lit = 2 * (num_inputs + 1 + l);
      out += std::to_string(latches[l][0]);
      out += " " + std::to_string(latches[l][1] == 2 ? lit : latches[l][1]);
      out += "\n";
    }
    out += std::to_string(bad_lit) + "\n";
    auto put_varint = [&out](unsigned value) {
      while (value >= 0x80) {
        out.push_back(static_cast<char>((value & 0x7f) | 0x80));
        value >>= 7;
      }
      out.push_back(static_cast<char>(value));
    };
    for (std::size_t g = 0; g < gates.size(); ++g) {
      const unsigned lhs = 2 * (num_inputs + num_latches + 1 + static_cast<unsigned>(g));
      const unsigned hi = std::max(gates[g][0], gates[g][1]);
      const unsigned lo = std::min(gates[g][0], gates[g][1]);
      put_varint(lhs - hi);
      put_varint(hi - lo);
    }
    return out;
  }
};

RandomAig random_aig(std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  RandomAig aig;
  aig.num_inputs = 1 + static_cast<unsigned>(rng.below(3));
  aig.num_latches = 1 + static_cast<unsigned>(rng.below(4));
  const unsigned num_gates = static_cast<unsigned>(rng.below(13));
  for (unsigned g = 0; g < num_gates; ++g) {
    // Any literal over the constants and the variables defined so far.
    const unsigned ceiling = 2 * (aig.num_inputs + aig.num_latches + 1 + g);
    aig.gates.push_back({static_cast<unsigned>(rng.below(ceiling)),
                         static_cast<unsigned>(rng.below(ceiling))});
  }
  const unsigned num_lits = 2 * (aig.num_vars() + 1);
  for (unsigned l = 0; l < aig.num_latches; ++l) {
    aig.latches.push_back({static_cast<unsigned>(rng.below(num_lits)),
                           static_cast<unsigned>(rng.below(3))});
  }
  aig.bad_lit = static_cast<unsigned>(rng.below(num_lits));
  return aig;
}

/// Independent reference semantics: evaluate the net-list directly over the
/// literal encoding, with none of the frontend's or IR's machinery.
struct RefSim {
  const RandomAig& aig;
  std::vector<std::uint8_t> latch_state;

  explicit RefSim(const RandomAig& a, util::Xoshiro256& rng) : aig(a) {
    for (unsigned l = 0; l < aig.num_latches; ++l) {
      const unsigned reset = aig.latches[l][1];
      latch_state.push_back(reset == 2 ? static_cast<std::uint8_t>(rng.below(2))
                                       : static_cast<std::uint8_t>(reset));
    }
  }

  /// Returns the bad literal's value, then advances the latches.
  bool step(const std::vector<std::uint8_t>& input_bits) {
    std::vector<std::uint8_t> value(aig.num_vars() + 1, 0);
    for (unsigned i = 0; i < aig.num_inputs; ++i) value[i + 1] = input_bits[i];
    for (unsigned l = 0; l < aig.num_latches; ++l) {
      value[aig.num_inputs + 1 + l] = latch_state[l];
    }
    auto lit = [&value](unsigned literal) -> std::uint8_t {
      return value[literal >> 1] ^ (literal & 1);
    };
    for (std::size_t g = 0; g < aig.gates.size(); ++g) {
      value[aig.num_inputs + aig.num_latches + 1 + g] =
          lit(aig.gates[g][0]) & lit(aig.gates[g][1]);
    }
    const bool bad = lit(aig.bad_lit) != 0;
    for (unsigned l = 0; l < aig.num_latches; ++l) {
      latch_state[l] = lit(aig.latches[l][0]);
    }
    return bad;
  }
};

TEST(FrontendFuzz, ParserMatchesReferenceSimulatorAndEnginesAgree) {
  constexpr std::uint64_t kSeeds = 200;
  constexpr std::size_t kSimSteps = 16;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    const RandomAig aig = random_aig(seed);
    ir::TransitionSystem ts = parse_aiger(aig.to_ascii(), "fuzz.aag");
    ir::TransitionSystem ts_bin = parse_aiger(aig.to_binary(), "fuzz.aig");
    ASSERT_EQ(ts.inputs().size(), aig.num_inputs);
    ASSERT_EQ(ts.states().size(), aig.num_latches);
    ASSERT_EQ(ts_bin.states().size(), aig.num_latches);

    // Differential simulation: reference net-list vs the parsed systems
    // (ASCII and binary in lock-step) under identical stimulus.
    util::Xoshiro256 rng(seed * 1000003);
    RefSim ref(aig, rng);
    sim::Assignment env, env_bin;
    for (unsigned l = 0; l < aig.num_latches; ++l) {
      env[ts.states()[l].var] = ref.latch_state[l];
      env_bin[ts_bin.states()[l].var] = ref.latch_state[l];
    }
    for (std::size_t step = 0; step < kSimSteps; ++step) {
      std::vector<std::uint8_t> input_bits;
      for (unsigned i = 0; i < aig.num_inputs; ++i) {
        input_bits.push_back(static_cast<std::uint8_t>(rng.below(2)));
        env[ts.inputs()[i]] = input_bits.back();
        env_bin[ts_bin.inputs()[i]] = input_bits.back();
      }
      // Property is !bad; evaluate before the latch update, like the ref.
      const std::uint64_t not_bad = sim::evaluate(ts.property(0).expr, env);
      const std::uint64_t not_bad_bin =
          sim::evaluate(ts_bin.property(0).expr, env_bin);
      const bool ref_bad = ref.step(input_bits);
      ASSERT_EQ(not_bad, ref_bad ? 0u : 1u) << "ASCII diverges at step " << step;
      ASSERT_EQ(not_bad_bin, ref_bad ? 0u : 1u)
          << "binary diverges at step " << step;
      const sim::Assignment next = sim::step(ts, env);
      const sim::Assignment next_bin = sim::step(ts_bin, env_bin);
      for (unsigned l = 0; l < aig.num_latches; ++l) {
        env[ts.states()[l].var] = next.at(ts.states()[l].var);
        env_bin[ts_bin.states()[l].var] = next_bin.at(ts_bin.states()[l].var);
        ASSERT_EQ(env[ts.states()[l].var],
                  static_cast<std::uint64_t>(ref.latch_state[l]))
            << "latch " << l << " diverges at step " << step;
      }
    }

    // Engine cross-validation: BMC and PDR must never contradict each other
    // on the same parsed design.
    mc::EngineOptions options;
    options.max_steps = 8;
    auto bmc = mc::make_engine(mc::EngineKind::Bmc, ts, options);
    const mc::Verdict bmc_verdict =
        bmc->prove_all({ts.property(0).expr}).verdict;
    options.max_steps = 12;
    auto pdr = mc::make_engine(mc::EngineKind::Pdr, ts, options);
    const mc::Verdict pdr_verdict =
        pdr->prove_all({ts.property(0).expr}).verdict;
    if (bmc_verdict == mc::Verdict::Falsified) {
      EXPECT_EQ(pdr_verdict, mc::Verdict::Falsified)
          << "BMC found a cex PDR missed";
    }
    if (pdr_verdict == mc::Verdict::Proven) {
      EXPECT_NE(bmc_verdict, mc::Verdict::Falsified)
          << "PDR proved a property BMC falsifies";
    }
  }
}

}  // namespace
}  // namespace genfv::frontend
