/// End-to-end integration tests: the complete paper pipeline (Listing 1 ->
/// Listing 2 target -> Fig. 2 induction failure -> Fig. 3 CEX -> Listing 3
/// helper -> proof), full-zoo convergence with the strong model profiles,
/// and the qualitative model ranking from the Results section.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "designs/design.hpp"
#include "flow/cex_repair_flow.hpp"
#include "flow/helper_gen_flow.hpp"
#include "genai/simulated_llm.hpp"
#include "sim/waveform.hpp"
#include "sva/compiler.hpp"

namespace genfv {
namespace {

flow::FlowOptions default_options() {
  flow::FlowOptions options;
  options.engine.max_k = 6;
  return options;
}

TEST(PaperPipeline, Figure3ScenarioEndToEnd) {
  // 1. Listing 1 + Listing 2 elaborate and compile.
  auto task = designs::make_task("sync_counters");
  ASSERT_EQ(task.target_indices.size(), 1u);

  // 2. Plain k-induction fails the step case and yields the Fig. 3 CEX.
  mc::KInductionEngine plain(task.ts, {.max_k = 4});
  const auto unaided = plain.prove_all(task.target_exprs());
  ASSERT_EQ(unaided.verdict, mc::Verdict::Unknown);
  ASSERT_TRUE(unaided.step_cex.has_value());
  const auto& cex = *unaided.step_cex;
  const ir::NodeRef c1 = task.ts.lookup("count1");
  const ir::NodeRef c2 = task.ts.lookup("count2");
  // Fig. 3's signature: at the failing frame count1 is all-ones while
  // count2 is not (its bit 31 in particular may be 0).
  const std::size_t last = cex.size() - 1;
  EXPECT_EQ(cex.value(c1, last), 0xFFFFFFFFu);
  EXPECT_NE(cex.value(c2, last), 0xFFFFFFFFu);
  // The rendered waveform (the prompt artefact) mentions both counters.
  const std::string wave = sim::render_waveform(
      cex, sim::default_signals(task.ts), {.failure_frame = last});
  EXPECT_NE(wave.find("count1"), std::string::npos);
  EXPECT_NE(wave.find("count2"), std::string::npos);

  // 3. The Fig. 2 repair flow with a GPT-4o-profile model converges, and the
  //    admitted lemma is Listing 3's helper.
  genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), 42);
  flow::CexRepairFlow repair(llm, default_options());
  const flow::FlowReport report = repair.run(task);
  EXPECT_TRUE(report.all_targets_proven());
  bool listing3 = false;
  for (const auto& lemma : report.admitted_lemmas) {
    if (lemma.find("count1 == count2") != std::string::npos) listing3 = true;
  }
  EXPECT_TRUE(listing3);
}

class ZooConvergence : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooConvergence, CexRepairFlowProvesEveryDesignWithGpt4o) {
  auto task = designs::make_task(GetParam());
  genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), 42);
  flow::CexRepairFlow repair(llm, default_options());
  const flow::FlowReport report = repair.run(task);
  EXPECT_TRUE(report.all_targets_proven()) << report.to_string();
  // Soundness firewall: every admitted lemma carries a Proven outcome.
  EXPECT_EQ(report.admitted_lemmas.size(),
            report.candidates_with(flow::CandidateStatus::Proven));
}

std::vector<std::string> zoo_names() {
  std::vector<std::string> names;
  for (const auto& d : designs::all_designs()) names.push_back(d.name);
  return names;
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, ZooConvergence, ::testing::ValuesIn(zoo_names()),
                         [](const auto& info) { return info.param; });

TEST(HelperGenerationFlow, Figure1FlowProvesCounterFamilies) {
  // The spec+RTL (no CEX) flow suffices for the equality-lemma designs.
  for (const char* name : {"sync_counters", "triple_counters"}) {
    auto task = designs::make_task(name);
    genai::SimulatedLlm llm(genai::profile_by_name("gpt-4-turbo"), 7);
    flow::HelperGenFlow flow(llm, default_options());
    const auto report = flow.run(task);
    EXPECT_TRUE(report.all_targets_proven()) << name << "\n" << report.to_string();
  }
}

TEST(ModelComparison, OpenAiProfilesDominateOnEcc) {
  // Results §V: "quality of generated assertions was much better in the case
  // of LLMs from OpenAI ... compared to Llama or Gemini". On the ECC family
  // the deep xor_linear analysis is required, which the weak profiles lack.
  std::size_t strong_wins = 0;
  std::size_t weak_wins = 0;
  for (const char* design : {"parity_codec", "hamming74", "secded84"}) {
    auto strong_task = designs::make_task(design);
    genai::SimulatedLlm strong(genai::profile_by_name("gpt-4o"), 11);
    flow::CexRepairFlow strong_flow(strong, default_options());
    if (strong_flow.run(strong_task).all_targets_proven()) ++strong_wins;

    auto weak_task = designs::make_task(design);
    genai::SimulatedLlm weak(genai::profile_by_name("llama-3-70b"), 11);
    flow::CexRepairFlow weak_flow(weak, default_options());
    if (weak_flow.run(weak_task).all_targets_proven()) ++weak_wins;
  }
  EXPECT_EQ(strong_wins, 3u);
  EXPECT_EQ(weak_wins, 0u);
}

TEST(Soundness, NoFlowEverAdmitsAFalseLemma) {
  // Run the noisiest profile over the zoo and re-verify every admitted lemma
  // with an independent engine: they must all be genuine invariants.
  for (const auto& info : designs::all_designs()) {
    auto task = designs::make_task(info);
    genai::SimulatedLlm llm(genai::profile_by_name("llama-3-70b"), 1337);
    flow::CexRepairFlow repair(llm, default_options());
    const auto report = repair.run(task);
    for (const auto& lemma_sva : report.admitted_lemmas) {
      sva::PropertyCompiler compiler(task.ts);
      const ir::NodeRef expr = compiler.compile(lemma_sva).expr;
      sim::RandomSimulator simulator(task.ts, 4242);
      EXPECT_FALSE(simulator.falsify(expr, 300, 3).has_value())
          << info.name << ": admitted lemma fails in simulation: " << lemma_sva;
    }
  }
}

}  // namespace
}  // namespace genfv
