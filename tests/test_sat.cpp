/// CDCL solver tests: unit behaviour, incremental assumptions, unsat cores,
/// budgets — plus the property-based cross-check against brute-force
/// enumeration on random 3-CNF instances, which exercises propagation,
/// conflict analysis, minimization, restarts and DB reduction together.

#include <gtest/gtest.h>

#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "sat/solver_pool.hpp"
#include "util/rng.hpp"

namespace genfv::sat {
namespace {

Lit pos(Var v) { return mk_lit(v); }
Lit neg(Var v) { return mk_lit(v, true); }

TEST(Types, LiteralEncoding) {
  const Lit p = mk_lit(3);
  EXPECT_EQ(var(p), 3);
  EXPECT_FALSE(sign(p));
  EXPECT_TRUE(sign(~p));
  EXPECT_EQ(var(~p), 3);
  EXPECT_EQ(~~p, p);
  EXPECT_EQ(p ^ true, ~p);
  EXPECT_EQ(p ^ false, p);
}

TEST(Solver, TrivialSatAndModel) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause(pos(a), pos(b)));
  ASSERT_TRUE(s.add_clause(neg(a)));
  EXPECT_EQ(s.solve(), LBool::True);
  EXPECT_EQ(s.model_value(a), LBool::False);
  EXPECT_EQ(s.model_value(b), LBool::True);
}

TEST(Solver, EmptyClauseMakesInconsistent) {
  Solver s;
  (void)s.new_var();
  EXPECT_FALSE(s.add_clause(std::vector<Lit>{}));
  EXPECT_TRUE(s.inconsistent());
  EXPECT_EQ(s.solve(), LBool::False);
}

TEST(Solver, UnitContradiction) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause(pos(a)));
  EXPECT_FALSE(s.add_clause(neg(a)));
  EXPECT_EQ(s.solve(), LBool::False);
}

TEST(Solver, TautologyAndDuplicatesAreHarmless) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), neg(a), pos(b)}));  // tautology: dropped
  ASSERT_TRUE(s.add_clause({pos(b), pos(b), pos(b)}));  // collapses to unit
  EXPECT_EQ(s.solve(), LBool::True);
  EXPECT_EQ(s.model_value(b), LBool::True);
}

TEST(Solver, PigeonholeThreeIntoTwoIsUnsat) {
  // p(i,j): pigeon i in hole j; 3 pigeons, 2 holes.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.add_clause(pos(p[i][0]), pos(p[i][1])));
  }
  for (int j = 0; j < 2; ++j) {
    for (int i1 = 0; i1 < 3; ++i1) {
      for (int i2 = i1 + 1; i2 < 3; ++i2) {
        ASSERT_TRUE(s.add_clause(neg(p[i1][j]), neg(p[i2][j])));
      }
    }
  }
  EXPECT_EQ(s.solve(), LBool::False);
}

TEST(Solver, AssumptionsAreTemporary) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause(neg(a), pos(b)));
  EXPECT_EQ(s.solve({pos(a)}), LBool::True);
  EXPECT_EQ(s.model_value(b), LBool::True);
  EXPECT_EQ(s.solve({pos(a), neg(b)}), LBool::False);
  // The same solver answers SAT again once the conflicting assumption goes.
  EXPECT_EQ(s.solve({neg(b)}), LBool::True);
  EXPECT_EQ(s.model_value(a), LBool::False);
}

TEST(Solver, FailedAssumptionCoreIsConflicting) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  ASSERT_TRUE(s.add_clause(neg(a), neg(b)));  // a && b impossible
  ASSERT_EQ(s.solve({pos(a), pos(b), pos(c)}), LBool::False);
  const auto& core = s.failed_assumptions();
  ASSERT_FALSE(core.empty());
  // c is irrelevant and must not be required; a or b must appear.
  for (const Lit l : core) EXPECT_NE(var(l), c);
  // Assert the core literals permanently: the formula must become UNSAT.
  Solver s2;
  (void)s2.new_var();
  (void)s2.new_var();
  (void)s2.new_var();
  ASSERT_TRUE(s2.add_clause(neg(a), neg(b)));
  bool consistent = true;
  for (const Lit l : core) consistent = s2.add_clause(l) && consistent;
  EXPECT_TRUE(!consistent || s2.solve() == LBool::False);
}

TEST(Solver, ConflictBudgetReturnsUndef) {
  // Pigeonhole 6 into 5: hard enough to exceed a 5-conflict budget.
  Solver s;
  constexpr int kPigeons = 6;
  constexpr int kHoles = 5;
  std::vector<std::vector<Var>> p(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < kPigeons; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < kHoles; ++j) clause.push_back(pos(p[i][j]));
    ASSERT_TRUE(s.add_clause(clause));
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i1 = 0; i1 < kPigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2) {
        ASSERT_TRUE(s.add_clause(neg(p[i1][j]), neg(p[i2][j])));
      }
    }
  }
  s.set_conflict_budget(5);
  EXPECT_EQ(s.solve(), LBool::Undef);
  s.set_conflict_budget(-1);
  EXPECT_EQ(s.solve(), LBool::False);
}

TEST(Solver, TrueLitIsAlwaysTrue) {
  Solver s;
  const Lit t = s.true_lit();
  EXPECT_EQ(s.solve(), LBool::True);
  EXPECT_EQ(s.model_value(t), LBool::True);
  EXPECT_EQ(s.solve({~t}), LBool::False);
}

// --- property-based cross-check against brute force ---------------------------

struct RandomCnfCase {
  std::uint64_t seed;
};

class SatBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

/// Enumerate all assignments; return true iff some satisfies all clauses.
bool brute_force_sat(int num_vars, const std::vector<std::vector<int>>& clauses,
                     std::uint32_t* satisfying = nullptr) {
  for (std::uint32_t m = 0; m < (1u << num_vars); ++m) {
    bool all_ok = true;
    for (const auto& clause : clauses) {
      bool clause_ok = false;
      for (const int lit : clause) {
        const int v = std::abs(lit) - 1;
        const bool val = (m >> v) & 1u;
        if ((lit > 0) == val) {
          clause_ok = true;
          break;
        }
      }
      if (!clause_ok) {
        all_ok = false;
        break;
      }
    }
    if (all_ok) {
      if (satisfying != nullptr) *satisfying = m;
      return true;
    }
  }
  return false;
}

TEST_P(SatBruteForce, AgreesOnRandom3Cnf) {
  util::Xoshiro256 rng(GetParam());
  for (int instance = 0; instance < 40; ++instance) {
    const int num_vars = 3 + static_cast<int>(rng.below(8));       // 3..10
    const int num_clauses = num_vars + static_cast<int>(rng.below(
                                           static_cast<std::uint64_t>(3 * num_vars)));
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<int> clause;
      const int len = 1 + static_cast<int>(rng.below(3));
      for (int l = 0; l < len; ++l) {
        const int v = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(num_vars)));
        clause.push_back(rng.chance(0.5) ? v : -v);
      }
      clauses.push_back(std::move(clause));
    }

    Solver solver;
    for (int v = 0; v < num_vars; ++v) (void)solver.new_var();
    bool load_ok = true;
    for (const auto& clause : clauses) {
      std::vector<Lit> lits;
      for (const int l : clause) lits.push_back(mk_lit(std::abs(l) - 1, l < 0));
      load_ok = solver.add_clause(std::move(lits)) && load_ok;
    }

    const bool expected = brute_force_sat(num_vars, clauses);
    if (!load_ok) {
      ASSERT_FALSE(expected) << "solver found level-0 conflict on a SAT instance";
      continue;
    }
    const LBool verdict = solver.solve();
    ASSERT_EQ(verdict == LBool::True, expected) << "instance " << instance;

    if (verdict == LBool::True) {
      // The model must satisfy every clause.
      for (const auto& clause : clauses) {
        bool ok = false;
        for (const int l : clause) {
          const LBool mv = solver.model_value(mk_lit(std::abs(l) - 1, l < 0));
          if (mv == LBool::True) {
            ok = true;
            break;
          }
        }
        ASSERT_TRUE(ok) << "model violates a clause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatBruteForce,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class SatAssumptionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatAssumptionProperty, AssumptionsMatchAddedUnits) {
  // solve(assumptions) must agree with solving a copy where the assumptions
  // are permanent unit clauses.
  util::Xoshiro256 rng(GetParam());
  for (int instance = 0; instance < 20; ++instance) {
    const int num_vars = 4 + static_cast<int>(rng.below(6));
    std::vector<std::vector<int>> clauses;
    const int num_clauses = 2 * num_vars;
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<int> clause;
      for (int l = 0; l < 3; ++l) {
        const int v = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(num_vars)));
        clause.push_back(rng.chance(0.5) ? v : -v);
      }
      clauses.push_back(std::move(clause));
    }
    std::vector<int> assumptions;
    for (int v = 1; v <= num_vars; ++v) {
      if (rng.chance(0.3)) assumptions.push_back(rng.chance(0.5) ? v : -v);
    }

    Solver incremental;
    Solver monolithic;
    for (int v = 0; v < num_vars; ++v) {
      (void)incremental.new_var();
      (void)monolithic.new_var();
    }
    bool mono_ok = true;
    for (const auto& clause : clauses) {
      std::vector<Lit> lits;
      for (const int l : clause) lits.push_back(mk_lit(std::abs(l) - 1, l < 0));
      ASSERT_TRUE(incremental.add_clause(lits));
      mono_ok = monolithic.add_clause(std::move(lits)) && mono_ok;
    }
    std::vector<Lit> assumption_lits;
    for (const int l : assumptions) {
      assumption_lits.push_back(mk_lit(std::abs(l) - 1, l < 0));
      if (mono_ok) mono_ok = monolithic.add_clause(mk_lit(std::abs(l) - 1, l < 0));
    }
    const LBool inc = incremental.solve(assumption_lits);
    const LBool mono = mono_ok ? monolithic.solve() : LBool::False;
    ASSERT_EQ(inc, mono);
    // The incremental solver must remain usable without assumptions.
    ASSERT_NE(incremental.solve(), LBool::Undef);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatAssumptionProperty, ::testing::Values(7, 11, 19, 23));

// --- DIMACS ---------------------------------------------------------------------

TEST(Dimacs, RoundTrip) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{1, -2}, {2, 3}, {-1}};
  const Cnf parsed = parse_dimacs(to_dimacs(cnf));
  EXPECT_EQ(parsed.num_vars, 3);
  EXPECT_EQ(parsed.clauses, cnf.clauses);
}

TEST(Dimacs, ParsesCommentsAndWhitespace) {
  const Cnf cnf = parse_dimacs("c a comment\np cnf 2 1\n 1 -2 0\n");
  EXPECT_EQ(cnf.num_vars, 2);
  ASSERT_EQ(cnf.clauses.size(), 1u);
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(parse_dimacs("p cnf x y\n1 0\n"), ParseError);
  EXPECT_THROW(parse_dimacs("p cnf 1 1\n1\n"), ParseError);     // unterminated
  EXPECT_THROW(parse_dimacs("p cnf 1 1\n5 0\n"), ParseError);   // var out of range
  EXPECT_THROW(parse_dimacs("p cnf 1 2\n1 0\n"), ParseError);   // count mismatch
}

TEST(Dimacs, LoadIntoSolver) {
  const Cnf cnf = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n");
  Solver s;
  ASSERT_TRUE(load_cnf(cnf, s));
  EXPECT_EQ(s.solve(), LBool::True);
  EXPECT_EQ(s.model_value(Var{1}), LBool::True);
}

TEST(SolverStats, CountersAdvance) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause(pos(a), pos(b)));
  (void)s.solve();
  EXPECT_GE(s.stats().solves, 1u);
  EXPECT_GE(s.stats().propagations + s.stats().decisions, 1u);
}

TEST(SolverPoolTest, HandsOutConfiguredSolvers) {
  SolverPool pool;
  const std::size_t a = pool.acquire();
  const std::size_t b = pool.acquire();
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_NE(&pool.at(a), &pool.at(b));

  const Var v = pool.at(a).new_var();
  ASSERT_TRUE(pool.at(a).add_clause(pos(v)));
  EXPECT_EQ(pool.at(a).solve(), LBool::True);
  EXPECT_EQ(pool.at(b).num_vars(), 0);  // handles are independent
}

TEST(SolverPoolTest, RebuildFoldsRetiredStats) {
  SolverPool pool;
  const std::size_t h = pool.acquire();
  const Var v = pool.at(h).new_var();
  ASSERT_TRUE(pool.at(h).add_clause(pos(v)));
  (void)pool.at(h).solve();
  const std::uint64_t solves_before = pool.total_stats().solves;
  EXPECT_GE(solves_before, 1u);

  Solver& fresh = pool.rebuild(h);
  EXPECT_EQ(&fresh, &pool.at(h));
  EXPECT_EQ(fresh.num_vars(), 0);  // genuinely fresh
  EXPECT_EQ(pool.rebuilds(), 1u);
  // The retired solver's lifetime counters survive the rebuild...
  EXPECT_EQ(pool.total_stats().solves, solves_before);
  // ...and keep accumulating with the replacement's work.
  const Var w = fresh.new_var();
  ASSERT_TRUE(fresh.add_clause(pos(w)));
  (void)fresh.solve();
  EXPECT_EQ(pool.total_stats().solves, solves_before + 1);
}

TEST(SolverPoolTest, ConfigAppliesToRebuiltSolvers) {
  std::atomic<bool> stop{true};
  SolverPool pool(SolverConfig{-1, &stop});
  const std::size_t h = pool.acquire();
  // A raised stop flag makes every solve abandon immediately with Undef.
  const Var v = pool.at(h).new_var();
  ASSERT_TRUE(pool.at(h).add_clause(pos(v), neg(v)));
  EXPECT_EQ(pool.at(h).solve(), LBool::Undef);
  Solver& fresh = pool.rebuild(h);
  const Var w = fresh.new_var();
  ASSERT_TRUE(fresh.add_clause(pos(w), neg(w)));
  EXPECT_EQ(fresh.solve(), LBool::Undef);
}

}  // namespace
}  // namespace genfv::sat
