/// CDCL solver tests: unit behaviour, incremental assumptions, unsat cores,
/// budgets — plus the property-based cross-check against brute-force
/// enumeration on random 3-CNF instances, which exercises propagation,
/// conflict analysis, minimization, restarts and DB reduction together.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <sstream>

#include "sat/backend.hpp"
#include "sat/dimacs.hpp"
#include "sat/solver.hpp"
#include "sat/solver_pool.hpp"
#include "util/rng.hpp"
#include "util/status.hpp"

namespace genfv::sat {
namespace {

Lit pos(Var v) { return mk_lit(v); }
Lit neg(Var v) { return mk_lit(v, true); }

TEST(Types, LiteralEncoding) {
  const Lit p = mk_lit(3);
  EXPECT_EQ(var(p), 3);
  EXPECT_FALSE(sign(p));
  EXPECT_TRUE(sign(~p));
  EXPECT_EQ(var(~p), 3);
  EXPECT_EQ(~~p, p);
  EXPECT_EQ(p ^ true, ~p);
  EXPECT_EQ(p ^ false, p);
}

TEST(Solver, TrivialSatAndModel) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause(pos(a), pos(b)));
  ASSERT_TRUE(s.add_clause(neg(a)));
  EXPECT_EQ(s.solve(), LBool::True);
  EXPECT_EQ(s.model_value(a), LBool::False);
  EXPECT_EQ(s.model_value(b), LBool::True);
}

TEST(Solver, EmptyClauseMakesInconsistent) {
  Solver s;
  (void)s.new_var();
  EXPECT_FALSE(s.add_clause(std::vector<Lit>{}));
  EXPECT_TRUE(s.inconsistent());
  EXPECT_EQ(s.solve(), LBool::False);
}

TEST(Solver, UnitContradiction) {
  Solver s;
  const Var a = s.new_var();
  ASSERT_TRUE(s.add_clause(pos(a)));
  EXPECT_FALSE(s.add_clause(neg(a)));
  EXPECT_EQ(s.solve(), LBool::False);
}

TEST(Solver, TautologyAndDuplicatesAreHarmless) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause({pos(a), neg(a), pos(b)}));  // tautology: dropped
  ASSERT_TRUE(s.add_clause({pos(b), pos(b), pos(b)}));  // collapses to unit
  EXPECT_EQ(s.solve(), LBool::True);
  EXPECT_EQ(s.model_value(b), LBool::True);
}

TEST(Solver, PigeonholeThreeIntoTwoIsUnsat) {
  // p(i,j): pigeon i in hole j; 3 pigeons, 2 holes.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(s.add_clause(pos(p[i][0]), pos(p[i][1])));
  }
  for (int j = 0; j < 2; ++j) {
    for (int i1 = 0; i1 < 3; ++i1) {
      for (int i2 = i1 + 1; i2 < 3; ++i2) {
        ASSERT_TRUE(s.add_clause(neg(p[i1][j]), neg(p[i2][j])));
      }
    }
  }
  EXPECT_EQ(s.solve(), LBool::False);
}

TEST(Solver, AssumptionsAreTemporary) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause(neg(a), pos(b)));
  EXPECT_EQ(s.solve({pos(a)}), LBool::True);
  EXPECT_EQ(s.model_value(b), LBool::True);
  EXPECT_EQ(s.solve({pos(a), neg(b)}), LBool::False);
  // The same solver answers SAT again once the conflicting assumption goes.
  EXPECT_EQ(s.solve({neg(b)}), LBool::True);
  EXPECT_EQ(s.model_value(a), LBool::False);
}

TEST(Solver, FailedAssumptionCoreIsConflicting) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  ASSERT_TRUE(s.add_clause(neg(a), neg(b)));  // a && b impossible
  ASSERT_EQ(s.solve({pos(a), pos(b), pos(c)}), LBool::False);
  const auto& core = s.failed_assumptions();
  ASSERT_FALSE(core.empty());
  // c is irrelevant and must not be required; a or b must appear.
  for (const Lit l : core) EXPECT_NE(var(l), c);
  // Assert the core literals permanently: the formula must become UNSAT.
  Solver s2;
  (void)s2.new_var();
  (void)s2.new_var();
  (void)s2.new_var();
  ASSERT_TRUE(s2.add_clause(neg(a), neg(b)));
  bool consistent = true;
  for (const Lit l : core) consistent = s2.add_clause(l) && consistent;
  EXPECT_TRUE(!consistent || s2.solve() == LBool::False);
}

TEST(Solver, ConflictBudgetReturnsUndef) {
  // Pigeonhole 6 into 5: hard enough to exceed a 5-conflict budget.
  Solver s;
  constexpr int kPigeons = 6;
  constexpr int kHoles = 5;
  std::vector<std::vector<Var>> p(kPigeons, std::vector<Var>(kHoles));
  for (auto& row : p) {
    for (auto& v : row) v = s.new_var();
  }
  for (int i = 0; i < kPigeons; ++i) {
    std::vector<Lit> clause;
    for (int j = 0; j < kHoles; ++j) clause.push_back(pos(p[i][j]));
    ASSERT_TRUE(s.add_clause(clause));
  }
  for (int j = 0; j < kHoles; ++j) {
    for (int i1 = 0; i1 < kPigeons; ++i1) {
      for (int i2 = i1 + 1; i2 < kPigeons; ++i2) {
        ASSERT_TRUE(s.add_clause(neg(p[i1][j]), neg(p[i2][j])));
      }
    }
  }
  s.set_conflict_budget(5);
  EXPECT_EQ(s.solve(), LBool::Undef);
  s.set_conflict_budget(-1);
  EXPECT_EQ(s.solve(), LBool::False);
}

TEST(Solver, TrueLitIsAlwaysTrue) {
  Solver s;
  const Lit t = s.true_lit();
  EXPECT_EQ(s.solve(), LBool::True);
  EXPECT_EQ(s.model_value(t), LBool::True);
  EXPECT_EQ(s.solve({~t}), LBool::False);
}

// --- property-based cross-check against brute force ---------------------------

struct RandomCnfCase {
  std::uint64_t seed;
};

class SatBruteForce : public ::testing::TestWithParam<std::uint64_t> {};

/// Enumerate all assignments; return true iff some satisfies all clauses.
bool brute_force_sat(int num_vars, const std::vector<std::vector<int>>& clauses,
                     std::uint32_t* satisfying = nullptr) {
  for (std::uint32_t m = 0; m < (1u << num_vars); ++m) {
    bool all_ok = true;
    for (const auto& clause : clauses) {
      bool clause_ok = false;
      for (const int lit : clause) {
        const int v = std::abs(lit) - 1;
        const bool val = (m >> v) & 1u;
        if ((lit > 0) == val) {
          clause_ok = true;
          break;
        }
      }
      if (!clause_ok) {
        all_ok = false;
        break;
      }
    }
    if (all_ok) {
      if (satisfying != nullptr) *satisfying = m;
      return true;
    }
  }
  return false;
}

TEST_P(SatBruteForce, AgreesOnRandom3Cnf) {
  util::Xoshiro256 rng(GetParam());
  for (int instance = 0; instance < 40; ++instance) {
    const int num_vars = 3 + static_cast<int>(rng.below(8));       // 3..10
    const int num_clauses = num_vars + static_cast<int>(rng.below(
                                           static_cast<std::uint64_t>(3 * num_vars)));
    std::vector<std::vector<int>> clauses;
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<int> clause;
      const int len = 1 + static_cast<int>(rng.below(3));
      for (int l = 0; l < len; ++l) {
        const int v = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(num_vars)));
        clause.push_back(rng.chance(0.5) ? v : -v);
      }
      clauses.push_back(std::move(clause));
    }

    Solver solver;
    for (int v = 0; v < num_vars; ++v) (void)solver.new_var();
    bool load_ok = true;
    for (const auto& clause : clauses) {
      std::vector<Lit> lits;
      for (const int l : clause) lits.push_back(mk_lit(std::abs(l) - 1, l < 0));
      load_ok = solver.add_clause(std::move(lits)) && load_ok;
    }

    const bool expected = brute_force_sat(num_vars, clauses);
    if (!load_ok) {
      ASSERT_FALSE(expected) << "solver found level-0 conflict on a SAT instance";
      continue;
    }
    const LBool verdict = solver.solve();
    ASSERT_EQ(verdict == LBool::True, expected) << "instance " << instance;

    if (verdict == LBool::True) {
      // The model must satisfy every clause.
      for (const auto& clause : clauses) {
        bool ok = false;
        for (const int l : clause) {
          const LBool mv = solver.model_value(mk_lit(std::abs(l) - 1, l < 0));
          if (mv == LBool::True) {
            ok = true;
            break;
          }
        }
        ASSERT_TRUE(ok) << "model violates a clause";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatBruteForce,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

class SatAssumptionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SatAssumptionProperty, AssumptionsMatchAddedUnits) {
  // solve(assumptions) must agree with solving a copy where the assumptions
  // are permanent unit clauses.
  util::Xoshiro256 rng(GetParam());
  for (int instance = 0; instance < 20; ++instance) {
    const int num_vars = 4 + static_cast<int>(rng.below(6));
    std::vector<std::vector<int>> clauses;
    const int num_clauses = 2 * num_vars;
    for (int c = 0; c < num_clauses; ++c) {
      std::vector<int> clause;
      for (int l = 0; l < 3; ++l) {
        const int v = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(num_vars)));
        clause.push_back(rng.chance(0.5) ? v : -v);
      }
      clauses.push_back(std::move(clause));
    }
    std::vector<int> assumptions;
    for (int v = 1; v <= num_vars; ++v) {
      if (rng.chance(0.3)) assumptions.push_back(rng.chance(0.5) ? v : -v);
    }

    Solver incremental;
    Solver monolithic;
    for (int v = 0; v < num_vars; ++v) {
      (void)incremental.new_var();
      (void)monolithic.new_var();
    }
    bool mono_ok = true;
    for (const auto& clause : clauses) {
      std::vector<Lit> lits;
      for (const int l : clause) lits.push_back(mk_lit(std::abs(l) - 1, l < 0));
      ASSERT_TRUE(incremental.add_clause(lits));
      mono_ok = monolithic.add_clause(std::move(lits)) && mono_ok;
    }
    std::vector<Lit> assumption_lits;
    for (const int l : assumptions) {
      assumption_lits.push_back(mk_lit(std::abs(l) - 1, l < 0));
      if (mono_ok) mono_ok = monolithic.add_clause(mk_lit(std::abs(l) - 1, l < 0));
    }
    const LBool inc = incremental.solve(assumption_lits);
    const LBool mono = mono_ok ? monolithic.solve() : LBool::False;
    ASSERT_EQ(inc, mono);
    // The incremental solver must remain usable without assumptions.
    ASSERT_NE(incremental.solve(), LBool::Undef);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SatAssumptionProperty, ::testing::Values(7, 11, 19, 23));

// --- DIMACS ---------------------------------------------------------------------

TEST(Dimacs, RoundTrip) {
  Cnf cnf;
  cnf.num_vars = 3;
  cnf.clauses = {{1, -2}, {2, 3}, {-1}};
  const Cnf parsed = parse_dimacs(to_dimacs(cnf));
  EXPECT_EQ(parsed.num_vars, 3);
  EXPECT_EQ(parsed.clauses, cnf.clauses);
}

TEST(Dimacs, ParsesCommentsAndWhitespace) {
  const Cnf cnf = parse_dimacs("c a comment\np cnf 2 1\n 1 -2 0\n");
  EXPECT_EQ(cnf.num_vars, 2);
  ASSERT_EQ(cnf.clauses.size(), 1u);
}

TEST(Dimacs, RejectsMalformedInput) {
  EXPECT_THROW(parse_dimacs("p cnf x y\n1 0\n"), ParseError);
  EXPECT_THROW(parse_dimacs("p cnf 1 1\n1\n"), ParseError);     // unterminated
  EXPECT_THROW(parse_dimacs("p cnf 1 1\n5 0\n"), ParseError);   // var out of range
  EXPECT_THROW(parse_dimacs("p cnf 1 2\n1 0\n"), ParseError);   // count mismatch
}

TEST(Dimacs, LoadIntoSolver) {
  const Cnf cnf = parse_dimacs("p cnf 2 2\n1 2 0\n-1 0\n");
  Solver s;
  ASSERT_TRUE(load_cnf(cnf, s));
  EXPECT_EQ(s.solve(), LBool::True);
  EXPECT_EQ(s.model_value(Var{1}), LBool::True);
}

TEST(SolverStats, CountersAdvance) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  ASSERT_TRUE(s.add_clause(pos(a), pos(b)));
  (void)s.solve();
  EXPECT_GE(s.stats().solves, 1u);
  EXPECT_GE(s.stats().propagations + s.stats().decisions, 1u);
}

TEST(SolverPoolTest, HandsOutConfiguredSolvers) {
  SolverPool pool;
  const std::size_t a = pool.acquire();
  const std::size_t b = pool.acquire();
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_NE(&pool.at(a), &pool.at(b));

  const Var v = pool.at(a).new_var();
  ASSERT_TRUE(pool.at(a).add_clause(pos(v)));
  EXPECT_EQ(pool.at(a).solve(), LBool::True);
  EXPECT_EQ(pool.at(b).num_vars(), 0);  // handles are independent
}

TEST(SolverPoolTest, RebuildFoldsRetiredStats) {
  SolverPool pool;
  const std::size_t h = pool.acquire();
  const Var v = pool.at(h).new_var();
  ASSERT_TRUE(pool.at(h).add_clause(pos(v)));
  (void)pool.at(h).solve();
  const std::uint64_t solves_before = pool.total_stats().solves;
  EXPECT_GE(solves_before, 1u);

  Backend& fresh = pool.rebuild(h);
  EXPECT_EQ(&fresh, &pool.at(h));
  EXPECT_EQ(fresh.num_vars(), 0);  // genuinely fresh
  EXPECT_EQ(pool.rebuilds(), 1u);
  // The retired solver's lifetime counters survive the rebuild...
  EXPECT_EQ(pool.total_stats().solves, solves_before);
  // ...and keep accumulating with the replacement's work.
  const Var w = fresh.new_var();
  ASSERT_TRUE(fresh.add_clause(pos(w)));
  (void)fresh.solve();
  EXPECT_EQ(pool.total_stats().solves, solves_before + 1);
}

// --- inprocessing soundness ---------------------------------------------------

/// Random CNF generator shared by the inprocessing fuzz tests: wide enough
/// clause/variable mix to give subsumption, strengthening and elimination
/// real work, small enough for brute force.
std::vector<std::vector<int>> random_cnf(util::Xoshiro256& rng, int num_vars) {
  const int num_clauses = num_vars + static_cast<int>(rng.below(
                                         static_cast<std::uint64_t>(4 * num_vars)));
  std::vector<std::vector<int>> clauses;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<int> clause;
    const int len = 1 + static_cast<int>(rng.below(4));  // 1..4 literals
    for (int l = 0; l < len; ++l) {
      const int v = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(num_vars)));
      clause.push_back(rng.chance(0.5) ? v : -v);
    }
    clauses.push_back(std::move(clause));
  }
  return clauses;
}

bool load_raw(Solver& s, int num_vars, const std::vector<std::vector<int>>& clauses) {
  while (s.num_vars() < num_vars) (void)s.new_var();
  bool ok = true;
  for (const auto& clause : clauses) {
    std::vector<Lit> lits;
    for (const int l : clause) lits.push_back(mk_lit(std::abs(l) - 1, l < 0));
    ok = s.add_clause(std::move(lits)) && ok;
  }
  return ok;
}

/// The model (extended through the elimination stack) must satisfy the
/// *original* clause list, not just the simplified database.
void expect_model_satisfies(const Solver& s,
                            const std::vector<std::vector<int>>& clauses) {
  for (const auto& clause : clauses) {
    bool ok = false;
    for (const int l : clause) {
      if (s.model_value(mk_lit(std::abs(l) - 1, l < 0)) == LBool::True) {
        ok = true;
        break;
      }
    }
    ASSERT_TRUE(ok) << "extended model violates an original clause";
  }
}

class InprocessFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InprocessFuzz, OnOffAndForcedSimplifyAgreeWithBruteForce) {
  // Three solvers over each instance: inprocessing off (the pinned baseline
  // path), on (cadence-scheduled — these instances are too small to hit the
  // conflict cadence, so this mostly checks the LBD-tier path), and on with
  // an explicit simplify_now() session (forces BVE/subsumption/vivification
  // through every clause). All must agree with brute force, and every SAT
  // model must extend over eliminated variables back to the original CNF.
  util::Xoshiro256 rng(GetParam());
  for (int instance = 0; instance < 30; ++instance) {
    const int num_vars = 4 + static_cast<int>(rng.below(9));  // 4..12
    const auto clauses = random_cnf(rng, num_vars);
    const bool expected = brute_force_sat(num_vars, clauses);

    Solver off;
    off.set_inprocessing(false);
    Solver on;
    Solver forced;
    const bool off_ok = load_raw(off, num_vars, clauses);
    const bool on_ok = load_raw(on, num_vars, clauses);
    const bool forced_ok = load_raw(forced, num_vars, clauses);
    ASSERT_EQ(off_ok, on_ok);
    ASSERT_EQ(off_ok, forced_ok);
    if (!off_ok) {
      ASSERT_FALSE(expected);
      continue;
    }
    if (!forced.inconsistent()) forced.simplify_now();

    ASSERT_EQ(off.solve() == LBool::True, expected) << "instance " << instance;
    ASSERT_EQ(on.solve() == LBool::True, expected) << "instance " << instance;
    ASSERT_EQ(forced.inconsistent() ? LBool::False : forced.solve(),
              expected ? LBool::True : LBool::False)
        << "instance " << instance;
    if (expected) {
      expect_model_satisfies(on, clauses);
      expect_model_satisfies(forced, clauses);
    }
    EXPECT_EQ(off.stats().inprocessings, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InprocessFuzz,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

class InprocessIncrementalFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(InprocessIncrementalFuzz, FrozenAssumptionsSurviveSimplifySessions) {
  // The incremental contract inprocessing must not break: interleave clause
  // batches, explicit simplify sessions and assumption solves, and compare
  // every answer against a plain solver with inprocessing off. Assumption
  // variables are frozen by solve(); a variable the simplifier eliminated
  // anyway is restored on re-import when a later batch mentions it.
  util::Xoshiro256 rng(GetParam());
  for (int instance = 0; instance < 10; ++instance) {
    const int num_vars = 6 + static_cast<int>(rng.below(6));  // 6..11
    Solver simplified;
    Solver baseline;
    baseline.set_inprocessing(false);
    while (simplified.num_vars() < num_vars) (void)simplified.new_var();
    while (baseline.num_vars() < num_vars) (void)baseline.new_var();

    bool consistent = true;
    for (int round = 0; round < 4 && consistent; ++round) {
      const auto batch = random_cnf(rng, num_vars);
      for (const auto& clause : batch) {
        std::vector<Lit> lits;
        for (const int l : clause) lits.push_back(mk_lit(std::abs(l) - 1, l < 0));
        const bool a = simplified.add_clause(lits);
        const bool b = baseline.add_clause(std::move(lits));
        ASSERT_EQ(a, b) << "level-0 divergence in round " << round;
        consistent = a;
        if (!consistent) break;
      }
      if (!consistent) break;
      simplified.simplify_now();
      if (simplified.inconsistent()) {
        // The session may find the level-0 conflict before baseline's next
        // solve does; the baseline must then answer UNSAT too.
        ASSERT_EQ(baseline.solve(), LBool::False);
        consistent = false;
        break;
      }

      std::vector<Lit> assumptions;
      for (int v = 0; v < num_vars; ++v) {
        if (rng.chance(0.25)) {
          assumptions.push_back(mk_lit(static_cast<Var>(v), rng.chance(0.5)));
        }
      }
      ASSERT_EQ(simplified.solve(assumptions), baseline.solve(assumptions))
          << "round " << round;
      ASSERT_EQ(simplified.solve(), baseline.solve()) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InprocessIncrementalFuzz,
                         ::testing::Values(17, 29, 43, 71));

TEST(Inprocess, EliminatedVariableIsRestoredOnImport) {
  // x (var 2) appears only in two-clause chains and is a prime elimination
  // target; after simplify_now() removes it, a later clause mentioning x
  // must transparently restore the elimination stack and stay sound.
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var x = s.new_var();
  ASSERT_TRUE(s.add_clause(pos(a), pos(x)));
  ASSERT_TRUE(s.add_clause(neg(x), pos(b)));
  s.freeze(a);
  s.freeze(b);
  s.simplify_now();
  ASSERT_TRUE(s.is_eliminated(x)) << "setup no longer eliminates x";
  EXPECT_GE(s.stats().eliminated_vars, 1u);

  // Re-import: force x true and a false; the restored chain implies b.
  ASSERT_TRUE(s.add_clause(pos(x)));
  ASSERT_TRUE(s.add_clause(neg(a)));
  EXPECT_FALSE(s.is_eliminated(x));
  EXPECT_GE(s.stats().restored_vars, 1u);
  ASSERT_EQ(s.solve(), LBool::True);
  EXPECT_EQ(s.model_value(b), LBool::True);
  EXPECT_EQ(s.model_value(x), LBool::True);
}

TEST(Inprocess, FrozenVariablesAreNeverEliminated) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var x = s.new_var();
  s.freeze(x);
  ASSERT_TRUE(s.add_clause(pos(a), pos(x)));
  ASSERT_TRUE(s.add_clause(neg(x), pos(b)));
  s.simplify_now();
  EXPECT_FALSE(s.is_eliminated(x));
  // An assumption solve on the frozen variable still works directly.
  ASSERT_EQ(s.solve({neg(x), neg(a)}), LBool::False);
  ASSERT_EQ(s.solve({pos(x), neg(b)}), LBool::False);
  ASSERT_EQ(s.solve({pos(x), pos(b)}), LBool::True);
}

TEST(Inprocess, SubsumptionAndStrengtheningShrinkTheDatabase) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  const Var c = s.new_var();
  const Var d = s.new_var();
  for (const Var v : {a, b, c, d}) s.freeze(v);
  ASSERT_TRUE(s.add_clause(pos(a), pos(b)));                  // subsumes the next
  ASSERT_TRUE(s.add_clause({pos(a), pos(b), pos(c)}));
  ASSERT_TRUE(s.add_clause({neg(a), pos(b), pos(d)}));        // strengthened by #1
  const std::size_t before = s.num_clauses();
  s.simplify_now();
  EXPECT_GE(s.stats().subsumed_clauses, 1u);
  EXPECT_GE(s.stats().strengthened_clauses, 1u);
  EXPECT_LT(s.num_clauses(), before);
  // Semantics preserved: (a|b) & (b|d after strengthening).
  ASSERT_EQ(s.solve({neg(b), neg(d)}), LBool::False);
  ASSERT_EQ(s.solve({neg(a), neg(b)}), LBool::False);
  ASSERT_EQ(s.solve({pos(a), pos(b)}), LBool::True);
}

// --- DRAT proofs ---------------------------------------------------------------

/// Minimal forward RUP checker mirroring scripts/check_drat.py: naive
/// counting propagation is plenty for test-sized proofs, and sharing no
/// code with the solver keeps the check independent.
struct RupChecker {
  std::vector<std::vector<int>> active;

  static bool unit_propagates_to_conflict(std::vector<std::vector<int>> clauses,
                                          std::vector<int> assignment) {
    bool changed = true;
    auto value = [&](int lit) -> int {
      for (const int a : assignment) {
        if (a == lit) return 1;
        if (a == -lit) return -1;
      }
      return 0;
    };
    while (changed) {
      changed = false;
      for (const auto& clause : clauses) {
        int unassigned = 0;
        int last = 0;
        bool satisfied = false;
        for (const int lit : clause) {
          const int v = value(lit);
          if (v == 1) {
            satisfied = true;
            break;
          }
          if (v == 0) {
            ++unassigned;
            last = lit;
          }
        }
        if (satisfied) continue;
        if (unassigned == 0) return true;  // conflict
        if (unassigned == 1) {
          assignment.push_back(last);
          changed = true;
        }
      }
    }
    return false;
  }

  bool check_add(const std::vector<int>& clause) {
    std::vector<int> negated;
    for (const int lit : clause) negated.push_back(-lit);
    if (!unit_propagates_to_conflict(active, negated)) return false;
    active.push_back(clause);
    return true;
  }

  bool check_delete(const std::vector<int>& clause) {
    std::vector<int> key = clause;
    std::sort(key.begin(), key.end());
    for (auto it = active.begin(); it != active.end(); ++it) {
      std::vector<int> have = *it;
      std::sort(have.begin(), have.end());
      if (have == key) {
        active.erase(it);
        return true;
      }
    }
    return false;
  }
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Drat, UnsatProofIsRupValidAndDerivesEmptyClause) {
  const std::string base = testing::TempDir() + "genfv_drat_ph43";
  Solver s;
  ASSERT_TRUE(s.start_proof(base));
  // Pigeonhole 4-into-3: small, genuinely UNSAT, needs real learning.
  const int pigeons = 4;
  const int holes = 3;
  std::vector<std::vector<int>> clauses;
  auto v = [&](int p, int h) { return p * holes + h + 1; };
  for (int p = 0; p < pigeons; ++p) {
    std::vector<int> at_least;
    for (int h = 0; h < holes; ++h) at_least.push_back(v(p, h));
    clauses.push_back(at_least);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        clauses.push_back({-v(p1, h), -v(p2, h)});
      }
    }
  }
  ASSERT_TRUE(load_raw(s, pigeons * holes, clauses));
  s.simplify_now();
  ASSERT_EQ(s.inconsistent() ? LBool::False : s.solve(), LBool::False);

  // Replay: the logged .cnf must match what we added, and every .drat add
  // must be RUP against the growing active set, ending in the empty clause.
  const Cnf logged = parse_dimacs(slurp(base + ".cnf"));
  ASSERT_EQ(logged.clauses.size(), clauses.size());
  RupChecker checker;
  checker.active = logged.clauses;

  bool empty_derived = false;
  std::istringstream proof(slurp(base + ".drat"));
  std::string line;
  std::size_t steps = 0;
  while (std::getline(proof, line)) {
    std::istringstream fields(line);
    std::string first;
    fields >> first;
    if (first.empty() || first == "c") continue;
    const bool deletion = first == "d";
    std::vector<int> lits;
    int lit = 0;
    if (!deletion) lits.push_back(std::stoi(first));
    while (fields >> lit && lit != 0) lits.push_back(lit);
    if (!deletion && !lits.empty() && lits.back() == 0) lits.pop_back();
    if (!deletion && lits.size() == 1 && lits[0] == 0) lits.clear();
    ++steps;
    if (deletion) {
      ASSERT_TRUE(checker.check_delete(lits)) << "bad deletion: " << line;
    } else {
      ASSERT_TRUE(checker.check_add(lits)) << "non-RUP step: " << line;
      if (lits.empty()) {
        empty_derived = true;
        break;
      }
    }
  }
  EXPECT_GT(steps, 0u);
  EXPECT_TRUE(empty_derived) << "UNSAT run never logged the empty clause";
}

TEST(Drat, SatRunLogsInputsButNoEmptyClause) {
  const std::string base = testing::TempDir() + "genfv_drat_sat";
  {
    // Scoped: the .cnf is finalized when the solver (and its writer) die.
    Solver s;
    ASSERT_TRUE(s.start_proof(base));
    const Var a = s.new_var();
    const Var b = s.new_var();
    ASSERT_TRUE(s.add_clause(pos(a), pos(b)));
    ASSERT_TRUE(s.add_clause(neg(a), pos(b)));
    ASSERT_EQ(s.solve(), LBool::True);
  }
  const Cnf logged = parse_dimacs(slurp(base + ".cnf"));
  EXPECT_EQ(logged.clauses.size(), 2u);
  // No proof line is the lone "0" empty-clause add.
  std::istringstream proof(slurp(base + ".drat"));
  std::string line;
  while (std::getline(proof, line)) EXPECT_NE(line, "0");
}

// --- backend registry -----------------------------------------------------------

TEST(BackendRegistry, InternalIsDefaultAndUnknownNamesThrow) {
  const std::vector<std::string> names = backend_names();
  ASSERT_FALSE(names.empty());
  EXPECT_NE(std::find(names.begin(), names.end(), "internal"), names.end());

  const std::unique_ptr<Backend> backend = make_backend("internal");
  ASSERT_NE(backend, nullptr);
  EXPECT_NE(dynamic_cast<Solver*>(backend.get()), nullptr);
  const Var v = backend->new_var();
  ASSERT_TRUE(backend->add_clause(pos(v)));
  EXPECT_EQ(backend->solve(), LBool::True);
  EXPECT_EQ(backend->model_value(v), LBool::True);

  EXPECT_THROW((void)make_backend("cadical-from-the-future"), UsageError);
}

TEST(SolverPoolTest, ConfigAppliesToRebuiltSolvers) {
  std::atomic<bool> stop{true};
  SolverPool pool(SolverConfig{-1, &stop});
  const std::size_t h = pool.acquire();
  // A raised stop flag makes every solve abandon immediately with Undef.
  const Var v = pool.at(h).new_var();
  ASSERT_TRUE(pool.at(h).add_clause(pos(v), neg(v)));
  EXPECT_EQ(pool.at(h).solve(), LBool::Undef);
  Backend& fresh = pool.rebuild(h);
  const Var w = fresh.new_var();
  ASSERT_TRUE(fresh.add_clause(pos(w), neg(w)));
  EXPECT_EQ(fresh.solve(), LBool::Undef);
}

}  // namespace
}  // namespace genfv::sat
