/// SVA frontend tests: the three accepted textual shapes, every supported
/// operator/system function, and — crucially — the temporal semantics of
/// $past / |=> verified against golden traces through the simulator and the
/// k-induction engine.

#include <gtest/gtest.h>

#include "util/status.hpp"

#include "hdl/elaborator.hpp"
#include "mc/kinduction.hpp"
#include "sim/random_sim.hpp"
#include "sva/compiler.hpp"

namespace genfv::sva {
namespace {

using ir::NodeRef;

hdl::ElaborationResult pipeline_design() {
  return hdl::elaborate_source(R"(
module pipe (input clk, rst, input [7:0] d, output logic [7:0] q1, q2);
  always_ff @(posedge clk) begin
    if (rst) begin
      q1 <= 8'h0;
      q2 <= 8'h0;
    end else begin
      q1 <= d;
      q2 <= q1;
    end
  end
endmodule
)");
}

TEST(SvaParser, AcceptsAllThreeShapes) {
  const auto block = parse_property("property p1; a |-> b; endproperty");
  EXPECT_EQ(block.name, "p1");
  const auto assertion = parse_property("assert property (a == b);");
  EXPECT_TRUE(assertion.name.empty());
  const auto bare = parse_property("a != b");
  EXPECT_TRUE(bare.name.empty());
  EXPECT_NE(bare.expr, nullptr);
}

TEST(SvaParser, RejectsGarbage) {
  EXPECT_THROW(parse_property("property ; x; endproperty"), ParseError);
  EXPECT_THROW(parse_property("a == b extra"), ParseError);
  EXPECT_THROW(parse_property("assert property a"), ParseError);
}

TEST(SvaCompiler, ListingsTwoAndThreeCompile) {
  auto elab = hdl::elaborate_source(R"(
module sync_counters (input clk, rst, output logic [31:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 32'b0;
      count2 <= 32'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
)");
  PropertyCompiler compiler(elab.ts);
  const auto target =
      compiler.compile("property equal_count; &count1 |-> &count2; endproperty");
  EXPECT_EQ(target.name, "equal_count");
  const auto helper = compiler.compile("property helper; count1 == count2; endproperty");
  auto& nm = elab.ts.nm();
  EXPECT_EQ(helper.expr, nm.mk_eq(elab.ts.lookup("count1"), elab.ts.lookup("count2")));
}

TEST(SvaCompiler, UnknownSignalIsACompileError) {
  auto elab = pipeline_design();
  PropertyCompiler compiler(elab.ts);
  EXPECT_THROW(compiler.compile("ghost == 1'b0"), ParseError);
}

TEST(SvaCompiler, PastAddsExactlyOneAuxRegisterPerDistinctExpr) {
  auto elab = pipeline_design();
  const std::size_t states_before = elab.ts.states().size();
  PropertyCompiler compiler(elab.ts);
  (void)compiler.compile("$past(q1) == q2 || $past(rst)");
  const std::size_t after_first = elab.ts.states().size();
  EXPECT_EQ(after_first, states_before + 2);  // $past(q1) and $past(rst)
  // Re-using $past(q1) must not add another register.
  (void)compiler.compile("$past(q1) == $past(q1)");
  EXPECT_EQ(elab.ts.states().size(), after_first);
}

TEST(SvaCompiler, PastSemanticsProvenByInduction) {
  auto elab = pipeline_design();
  PropertyCompiler compiler(elab.ts);
  // q2 is q1 delayed; $past(q1) == q2 unless reset interfered (rst is
  // constrained inactive, and both start at 0, so it holds outright).
  const auto prop = compiler.compile("$past(q1) == q2");
  mc::KInductionEngine engine(elab.ts, {.max_k = 4});
  EXPECT_EQ(engine.prove(prop.expr).verdict, mc::Verdict::Proven);
}

TEST(SvaCompiler, PastDepthTwo) {
  auto elab = pipeline_design();
  PropertyCompiler compiler(elab.ts);
  const auto prop = compiler.compile("$past(d, 2) == q2");
  mc::KInductionEngine engine(elab.ts, {.max_k = 4});
  EXPECT_EQ(engine.prove(prop.expr).verdict, mc::Verdict::Proven);
}

TEST(SvaCompiler, NonOverlappingImplication) {
  auto elab = hdl::elaborate_source(R"(
module hs (input clk, rst, input req, output logic ack);
  always_ff @(posedge clk) begin
    if (rst) ack <= 1'b0;
    else ack <= req;
  end
endmodule
)");
  PropertyCompiler compiler(elab.ts);
  // req |=> ack: a request is acknowledged in the following cycle.
  const auto prop = compiler.compile("property p; req |=> ack; endproperty");
  mc::KInductionEngine engine(elab.ts, {.max_k = 4});
  EXPECT_EQ(engine.prove(prop.expr).verdict, mc::Verdict::Proven);

  // The overlapping form must NOT hold (ack lags by one cycle).
  const auto bad = compiler.compile("property q; req |-> ack; endproperty");
  mc::KInductionEngine engine2(elab.ts, {.max_k = 8});
  EXPECT_EQ(engine2.prove(bad.expr).verdict, mc::Verdict::Falsified);
}

TEST(SvaCompiler, RoseFellStableChanged) {
  auto elab = hdl::elaborate_source(R"(
module t (input clk, rst, output logic tog);
  always_ff @(posedge clk) begin
    if (rst) tog <= 1'b0;
    else tog <= !tog;
  end
endmodule
)");
  PropertyCompiler compiler(elab.ts);
  // A toggler rises exactly when it is 1 now (it was 0 before): $rose(tog) == tog.
  const auto rose = compiler.compile("$rose(tog) == tog");
  // $fell is the complement on a toggler (after the first cycle): tolerate
  // the init frame via |->.
  const auto fell = compiler.compile("!tog |-> ($fell(tog) || !$past(tog))");
  const auto changed = compiler.compile("$changed(tog) || $stable(tog)");  // tautology
  mc::KInductionEngine engine(elab.ts, {.max_k = 4});
  EXPECT_EQ(engine.prove(rose.expr).verdict, mc::Verdict::Proven);
  EXPECT_EQ(engine.prove(fell.expr).verdict, mc::Verdict::Proven);
  EXPECT_EQ(engine.prove(changed.expr).verdict, mc::Verdict::Proven);
}

TEST(SvaCompiler, CountonesOnehotAgainstPopcountOracle) {
  ir::TransitionSystem ts;
  const NodeRef x = ts.add_input("x", 6);
  PropertyCompiler compiler(ts);
  const NodeRef co = compiler.compile_expr("$countones(x) == 3'd2");
  const NodeRef oh = compiler.compile_expr("$onehot(x)");
  const NodeRef oh0 = compiler.compile_expr("$onehot0(x)");
  for (std::uint64_t v = 0; v < 64; ++v) {
    const int ones = std::popcount(v);
    const sim::Assignment env{{x, v}};
    EXPECT_EQ(sim::evaluate(co, env), ones == 2 ? 1u : 0u) << v;
    EXPECT_EQ(sim::evaluate(oh, env), ones == 1 ? 1u : 0u) << v;
    EXPECT_EQ(sim::evaluate(oh0, env), ones <= 1 ? 1u : 0u) << v;
  }
}

TEST(SvaCompiler, ReductionsBitSelectsAndArithmetic) {
  ir::TransitionSystem ts;
  const NodeRef x = ts.add_input("x", 8);
  const NodeRef y = ts.add_input("y", 8);
  PropertyCompiler compiler(ts);
  const NodeRef expr = compiler.compile_expr("((x ^ y) == 8'h0) |-> (&x == &y)");
  const sim::Assignment env{{x, 0xFF}, {y, 0xFF}};
  EXPECT_EQ(sim::evaluate(expr, env), 1u);
  const NodeRef arith = compiler.compile_expr("(x + y) - y == x");
  EXPECT_EQ(sim::evaluate(arith, {{x, 200}, {y, 123}}), 1u);
  const NodeRef sel = compiler.compile_expr("x[7:4] == 4'hA |-> x[7]");
  EXPECT_EQ(sim::evaluate(sel, {{x, 0xA0}, {y, 0}}), 1u);
}

TEST(SvaCompiler, IsUnknownIsAlwaysFalseInTwoState) {
  ir::TransitionSystem ts;
  (void)ts.add_input("x", 4);
  PropertyCompiler compiler(ts);
  const NodeRef e = compiler.compile_expr("!$isunknown(x)");
  EXPECT_TRUE(e->is_const());
  EXPECT_EQ(e->value(), 1u);
}

TEST(SvaCompiler, UnsupportedSystemFunctionRejected) {
  ir::TransitionSystem ts;
  (void)ts.add_input("x", 4);
  PropertyCompiler compiler(ts);
  EXPECT_THROW(compiler.compile_expr("$random(x)"), ParseError);
  EXPECT_THROW(compiler.compile_expr("$past(x, 0)"), ParseError);
  EXPECT_THROW(compiler.compile_expr("$past()"), ParseError);
}

TEST(SvaCompiler, AddPropertyHelperRegistersOnSystem) {
  auto elab = pipeline_design();
  const std::size_t idx = add_property(elab.ts, "q1 == q1", ir::PropertyRole::Target,
                                       "fallback_name");
  EXPECT_EQ(elab.ts.property(idx).name, "fallback_name");
  const std::size_t idx2 =
      add_property(elab.ts, "property named; q1 == q1; endproperty");
  EXPECT_EQ(elab.ts.property(idx2).name, "named");
}

}  // namespace
}  // namespace genfv::sva
