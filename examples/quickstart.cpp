/// quickstart — the five-minute tour of the genfv public API.
///
/// 1. Write (or load) RTL in the supported SystemVerilog subset.
/// 2. Attach SVA target properties.
/// 3. Hand the task to the Fig. 2 flow with an LLM client.
/// 4. Read the report: which helper assertions were generated, which were
///    proven and assumed, and whether the targets closed.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "flow/cex_repair_flow.hpp"
#include "genai/simulated_llm.hpp"

int main() {
  using namespace genfv;

  // 1. RTL: the paper's Listing 1 — two synchronized 32-bit counters.
  const std::string rtl = R"(module sync_counters (input clk, rst,
                     output logic [31:0] count1, count2);
  always @(posedge clk or posedge rst) begin
    if (rst) begin
      count1 <= 32'b0;
      count2 <= 32'b0;
    end else begin
      count1++;
      count2++;
    end
  end
endmodule
)";

  // 2. The target property (paper Listing 2): whenever count1 is saturated,
  //    count2 must be saturated too. True — but not inductive on its own.
  auto task = flow::VerificationTask::from_rtl(
      "sync_counters",
      "Two 32-bit counters reset together and increment together; they are "
      "always equal.",
      rtl,
      {{"equal_count", "property equal_count; &count1 |-> &count2; endproperty"}});

  // 3. An LLM client. SimulatedLlm is the offline, deterministic stand-in;
  //    implement genai::LlmClient against any HTTP API to use a live model.
  genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), /*seed=*/42);

  flow::FlowOptions options;
  options.engine.max_k = 8;  // induction depth budget per proof

  flow::CexRepairFlow flow(llm, options);
  const flow::FlowReport report = flow.run(task);

  // 4. The report.
  std::printf("%s\n", report.to_string().c_str());
  std::printf(report.all_targets_proven()
                  ? "SUCCESS: target proven with %zu generated helper assertion(s).\n"
                  : "Target not proven (%zu lemmas admitted).\n",
              report.admitted_lemmas.size());
  return report.all_targets_proven() ? 0 : 1;
}
