/// ecc_verification — the paper's second evaluation family: proving
/// error-correcting-code designs with generated parity lemmas.
///
/// Runs the Fig. 2 repair flow on the three ECC designs (parity codec,
/// Hamming(7,4), SECDED(8,4)) and prints the XOR/parity helper assertions
/// the model mined — the invariants that tie the stored codeword to the
/// shadow data and make single-error correction provable by induction.
///
/// Build & run:  ./build/examples/ecc_verification

#include <cstdio>

#include "designs/design.hpp"
#include "flow/cex_repair_flow.hpp"
#include "genai/simulated_llm.hpp"

int main() {
  using namespace genfv;

  bool all_proven = true;
  for (const char* name : {"parity_codec", "hamming74", "secded84"}) {
    const auto& info = designs::design_by_name(name);
    std::printf("=== %s: %s ===\n", info.name.c_str(), info.description.c_str());

    auto task = designs::make_task(info);
    genai::SimulatedLlm llm(genai::profile_by_name("gpt-4o"), 7);
    flow::FlowOptions options;
    options.engine.max_k = 8;
    flow::CexRepairFlow flow(llm, options);
    const flow::FlowReport report = flow.run(task);

    std::printf("targets:\n");
    for (const auto& t : report.targets) {
      std::printf("  %-28s %s\n", t.name.c_str(), t.result.summary().c_str());
    }
    std::printf("parity/XOR lemmas admitted (%zu):\n", report.admitted_lemmas.size());
    for (const auto& lemma : report.admitted_lemmas) {
      std::printf("  assume %s\n", lemma.c_str());
    }
    std::printf("repair iterations: %zu, engine time: %.1f ms\n\n",
                report.iterations.size(), report.prove_seconds * 1e3);
    all_proven = all_proven && report.all_targets_proven();
  }

  std::printf(all_proven ? "All ECC targets proven.\n"
                         : "Some ECC targets remain unproven.\n");
  return all_proven ? 0 : 1;
}
