/// model_comparison — the Results-section observation, interactively: run
/// the same repair task against all four model profiles and watch the
/// quality gap (insight depth, hallucinations, syntax junk) play out.
///
/// Build & run:  ./build/examples/model_comparison [design]
/// (default design: hamming74 — the XOR-insight stress case)

#include <cstdio>
#include <string>

#include "designs/design.hpp"
#include "flow/cex_repair_flow.hpp"
#include "genai/simulated_llm.hpp"

int main(int argc, char** argv) {
  using namespace genfv;

  const std::string design = argc > 1 ? argv[1] : "hamming74";
  const auto& info = designs::design_by_name(design);
  std::printf("design: %s — %s\n\n", info.name.c_str(), info.description.c_str());

  for (const auto& model : genai::known_models()) {
    auto task = designs::make_task(info);
    genai::SimulatedLlm llm(genai::profile_by_name(model), /*seed=*/11);
    flow::FlowOptions options;
    options.engine.max_k = 8;
    flow::CexRepairFlow flow(llm, options);
    const flow::FlowReport report = flow.run(task);

    std::printf("--- %s ---\n", model.c_str());
    std::printf("  verdict:            %s\n",
                report.all_targets_proven() ? "proven" : "NOT proven");
    std::printf("  repair iterations:  %zu\n", report.iterations.size());
    std::printf("  candidates:         %zu\n", report.candidates_total());
    std::printf("  proven lemmas:      %zu\n",
                report.candidates_with(flow::CandidateStatus::Proven));
    std::printf("  hallucinations*:    %zu   (*caught by the simulation screen)\n",
                report.candidates_with(flow::CandidateStatus::SimFalsified));
    std::printf("  proof rejects:      %zu\n",
                report.candidates_with(flow::CandidateStatus::ProofFailed));
    std::printf("  syntax/compile:     %zu\n",
                report.candidates_with(flow::CandidateStatus::SyntaxRejected) +
                    report.candidates_with(flow::CandidateStatus::CompileRejected));
    std::printf("  model latency:      %.1f s (simulated)\n\n", report.llm_seconds);
  }

  std::printf("The paper's observation — OpenAI-profile models produce markedly "
              "better assertions than the Llama/Gemini profiles — comes from the "
              "insight gap (XOR/parity analyses) plus lower noise rates. See "
              "bench_results_models for the full sweep.\n");
  return 0;
}
