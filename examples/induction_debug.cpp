/// induction_debug — the paper's Fig. 2 / Fig. 3 walkthrough, step by step,
/// using the engine-level API directly (no flow orchestration).
///
/// Shows exactly what a verification engineer sees: the induction-step
/// failure, the spurious counterexample waveform starting from an
/// unreachable state, the prompt that goes to the model, the helper it
/// proposes, and the closed proof.
///
/// Build & run:  ./build/examples/induction_debug

#include <cstdio>

#include "designs/design.hpp"
#include "genai/prompt.hpp"
#include "genai/response_parser.hpp"
#include "genai/simulated_llm.hpp"
#include "mc/kinduction.hpp"
#include "sim/waveform.hpp"
#include "sva/compiler.hpp"

int main() {
  using namespace genfv;

  auto task = designs::make_task("sync_counters");
  const ir::NodeRef target = task.target_exprs()[0];

  std::printf("=== Step 1: attempt the proof by k-induction ===\n");
  mc::KInductionEngine engine(task.ts, {.max_k = 6});
  const mc::InductionResult attempt = engine.prove(target);
  std::printf("verdict: %s\n\n", attempt.summary().c_str());

  if (!attempt.step_cex.has_value()) {
    std::printf("unexpected: no induction-step counterexample\n");
    return 1;
  }

  std::printf("=== Step 2: inspect the induction-step counterexample (Fig. 3) ===\n");
  const sim::Trace& cex = *attempt.step_cex;
  const std::size_t failing_frame = cex.size() - 1;
  sim::WaveformOptions wave_options;
  wave_options.failure_frame = failing_frame;
  const std::string waveform =
      sim::render_waveform(cex, sim::default_signals(task.ts), wave_options);
  std::printf("%s\n", waveform.c_str());
  std::printf("%s\n\n",
              sim::render_bit_diff(cex, failing_frame, "count1",
                                   task.ts.lookup("count1"), "count2",
                                   task.ts.lookup("count2"))
                  .c_str());
  std::printf("The start state at t0 is unreachable (the counters differ), but the\n"
              "inductive step cannot know that without a stronger invariant.\n\n");

  std::printf("=== Step 3: ask the model for a helper assertion (Fig. 2) ===\n");
  genai::PromptInputs inputs;
  inputs.design_name = task.name;
  inputs.spec = task.spec;
  inputs.rtl = task.rtl;
  inputs.target_properties = task.target_svas();
  inputs.failed_property = task.target_svas()[0];
  inputs.cex_waveform = waveform;
  inputs.induction_depth = attempt.k;
  const genai::Prompt prompt = genai::render_cex_repair_prompt(inputs);

  genai::SimulatedLlm llm(genai::profile_by_name("gpt-4-turbo"), 2024);
  const genai::Completion completion = llm.complete(prompt);
  std::printf("--- model answer (%s, %llu completion tokens) ---\n%s\n",
              completion.model.c_str(),
              static_cast<unsigned long long>(completion.completion_tokens),
              completion.text.c_str());

  std::printf("=== Step 4: prove the helper, then the target ===\n");
  std::vector<ir::NodeRef> lemmas;
  sva::PropertyCompiler compiler(task.ts);
  for (const std::string& text : genai::extract_assertions(completion.text)) {
    try {
      const auto compiled = compiler.compile(text);
      mc::KInductionEngine helper_engine(task.ts, {.max_k = 6, .lemmas = lemmas});
      const auto proof = helper_engine.prove(compiled.expr);
      std::printf("  %-50s -> %s\n", compiled.source.substr(0, 50).c_str(),
                  proof.summary().c_str());
      if (proof.verdict == mc::Verdict::Proven) lemmas.push_back(compiled.expr);
    } catch (const Error& e) {
      std::printf("  rejected (parse/compile): %s\n", e.what());
    }
  }

  mc::KInductionEngine final_engine(task.ts, {.max_k = 6, .lemmas = lemmas});
  const auto final_result = final_engine.prove(target);
  std::printf("\nfinal verdict with %zu lemma(s): %s\n", lemmas.size(),
              final_result.summary().c_str());
  return final_result.verdict == mc::Verdict::Proven ? 0 : 1;
}
